// Tests for the AutoClass extensions: log-normal and ignore model terms,
// prediction on foreign data, and checkpoint/resume.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "autoclass/checkpoint.hpp"
#include "autoclass/report.hpp"
#include "autoclass/search.hpp"
#include "data/synth.hpp"
#include "util/error.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace pac::ac {
namespace {

using data::Attribute;
using data::Dataset;
using data::Schema;

// ---- log-normal term ----

Dataset lognormal_dataset(std::size_t n, double mu, double sigma,
                          std::uint64_t seed) {
  Dataset d(Schema({Attribute::real("x", 0.01)}), n);
  Xoshiro256ss rng(seed);
  for (std::size_t i = 0; i < n; ++i)
    d.set_real(i, 0, std::exp(mu + sigma * normal01(rng)));
  return d;
}

Model lognormal_model(const Dataset& d) {
  TermSpec spec;
  spec.kind = TermKind::kSingleLognormal;
  spec.attributes = {0};
  return Model(d, {spec});
}

TEST(Lognormal, FitRecoversLogSpaceMoments) {
  const Dataset d = lognormal_dataset(20000, 1.5, 0.4, 1);
  const Model model = lognormal_model(d);
  const Term& term = model.term(0);
  std::vector<double> stats(term.stats_size(), 0.0);
  for (std::size_t i = 0; i < d.num_items(); ++i)
    term.accumulate(i, 1.0, stats);
  std::vector<double> params(term.param_size(), 0.0);
  term.update_params(stats, params);
  EXPECT_NEAR(params[0], 1.5, 0.02);
  EXPECT_NEAR(params[1], 0.4, 0.02);
}

TEST(Lognormal, DensityIntegratesToOne) {
  const Dataset d = lognormal_dataset(10, 0.0, 0.5, 2);
  const Model model = lognormal_model(d);
  // p(x) = N(log x | m, s) / x, times rel_error; integrate over x > 0.
  const std::vector<double> params = {0.0, 0.5, std::log(0.5)};
  double integral = 0.0;
  const double dx = 1e-3;
  Dataset probe(d.schema(), 1);
  for (double x = dx; x < 20.0; x += dx) {
    probe.set_real(0, 0, x);
    integral +=
        std::exp(model.term(0).log_prob_foreign(probe, 0, params)) * dx;
  }
  EXPECT_NEAR(integral, 0.01, 1e-4);  // = rel_error
}

TEST(Lognormal, RejectsNonPositiveValues) {
  Dataset d(Schema({Attribute::real("x", 0.01)}), 2);
  d.set_real(0, 0, 1.0);
  d.set_real(1, 0, -2.0);
  EXPECT_THROW(lognormal_model(d), pac::Error);
  d.set_real(1, 0, 0.0);
  EXPECT_THROW(lognormal_model(d), pac::Error);
}

TEST(Lognormal, LogLikelihoodOfStatsMatchesDirectSum) {
  const Dataset d = lognormal_dataset(100, 0.5, 0.8, 3);
  const Model model = lognormal_model(d);
  const Term& term = model.term(0);
  std::vector<double> stats(term.stats_size(), 0.0);
  std::vector<double> weights(100);
  for (std::size_t i = 0; i < 100; ++i) {
    weights[i] = 0.2 + 0.007 * static_cast<double>(i);
    term.accumulate(i, weights[i], stats);
  }
  std::vector<double> params(term.param_size(), 0.0);
  term.update_params(stats, params);
  double direct = 0.0;
  for (std::size_t i = 0; i < 100; ++i)
    direct += weights[i] * term.log_prob(i, params);
  EXPECT_NEAR(term.log_likelihood_of_stats(stats, params), direct, 1e-8);
}

TEST(Lognormal, HandlesMissingValues) {
  Dataset d = lognormal_dataset(100, 0.0, 0.3, 4);
  d.set_missing(7, 0);
  const Model model = lognormal_model(d);
  std::vector<double> params = {0.0, 0.3, std::log(0.3)};
  EXPECT_EQ(model.term(0).log_prob(7, params), 0.0);
}

TEST(Lognormal, SeparatesScaleClusters) {
  // Two clusters differing by scale (1x vs 100x): trivial in log space.
  Dataset d(Schema({Attribute::real("x", 0.01)}), 2000);
  std::vector<std::int32_t> truth(2000);
  Xoshiro256ss rng(5);
  for (std::size_t i = 0; i < 2000; ++i) {
    const bool big = i % 2 == 0;
    truth[i] = big ? 1 : 0;
    const double mu = big ? std::log(100.0) : 0.0;
    d.set_real(i, 0, std::exp(mu + 0.3 * normal01(rng)));
  }
  const Model model = lognormal_model(d);
  SearchConfig config;
  config.start_j_list = {2};
  config.max_tries = 2;
  config.em.max_cycles = 50;
  const SearchResult result = sequential_search(model, config);
  EXPECT_EQ(result.top().num_classes(), 2u);
  EXPECT_GT(data::adjusted_rand_index(truth, assign_labels(result.top())),
            0.99);
}

TEST(Lognormal, MarginalFiniteAndBelowMaxLikelihood) {
  const Dataset d = lognormal_dataset(500, 1.0, 0.5, 6);
  const Model model = lognormal_model(d);
  const Term& term = model.term(0);
  std::vector<double> stats(term.stats_size(), 0.0);
  for (std::size_t i = 0; i < 500; ++i) term.accumulate(i, 1.0, stats);
  std::vector<double> params(term.param_size(), 0.0);
  term.update_params(stats, params);
  const double marginal = term.log_marginal(stats);
  const double maxlike = term.log_likelihood_of_stats(stats, params);
  EXPECT_TRUE(std::isfinite(marginal));
  EXPECT_LT(marginal, maxlike);
  std::vector<double> empty(term.stats_size(), 0.0);
  EXPECT_EQ(term.log_marginal(empty), 0.0);
}

// ---- ignore term ----

TEST(Ignore, ExcludedAttributeDoesNotAffectClustering) {
  // Attribute 0 carries the clusters; attribute 1 is pure noise that we
  // ignore.  Classification must match the one without attribute 1.
  const std::vector<data::GaussianComponent> mix = {
      {0.5, {0.0, 0.0}, {0.5, 5.0}}, {0.5, {10.0, 0.0}, {0.5, 5.0}}};
  const data::LabeledDataset ld = data::gaussian_mixture(mix, 1000, 7);

  TermSpec keep;
  keep.kind = TermKind::kSingleNormal;
  keep.attributes = {0};
  TermSpec drop;
  drop.kind = TermKind::kIgnore;
  drop.attributes = {1};
  const Model model(ld.dataset, {keep, drop});
  EXPECT_EQ(model.params_per_class(), 3u);  // only the normal term

  SearchConfig config;
  config.start_j_list = {2};
  config.max_tries = 1;
  config.em.max_cycles = 50;
  const SearchResult result = sequential_search(model, config);
  EXPECT_EQ(result.top().num_classes(), 2u);
  EXPECT_GT(data::adjusted_rand_index(ld.labels, assign_labels(result.top())),
            0.99);
}

TEST(Ignore, ZeroFootprint) {
  const data::LabeledDataset ld = data::paper_dataset(50, 8);
  TermSpec keep;
  keep.kind = TermKind::kSingleNormal;
  keep.attributes = {0};
  TermSpec drop;
  drop.kind = TermKind::kIgnore;
  drop.attributes = {1};
  const Model model(ld.dataset, {keep, drop});
  const Term& ignore = model.term(1);
  EXPECT_EQ(ignore.param_size(), 0u);
  EXPECT_EQ(ignore.stats_size(), 0u);
  EXPECT_EQ(ignore.free_params(), 0u);
  EXPECT_EQ(ignore.log_prob(0, {}), 0.0);
  EXPECT_EQ(ignore.influence({}), 0.0);
  EXPECT_EQ(ignore.describe({}), "(ignored)");
}

TEST(Ignore, TermKindNamesComplete) {
  EXPECT_STREQ(to_string(TermKind::kSingleLognormal), "single_lognormal");
  EXPECT_STREQ(to_string(TermKind::kIgnore), "ignore");
}

// ---- prediction ----

TEST(Predict, OnTrainingDataMatchesAssignLabels) {
  const data::LabeledDataset ld = data::paper_dataset(600, 9);
  const Model model = Model::default_model(ld.dataset);
  SearchConfig config;
  config.start_j_list = {4};
  config.max_tries = 1;
  config.em.max_cycles = 40;
  const SearchResult result = sequential_search(model, config);
  const auto trained = assign_labels(result.top());
  const auto predicted = predict_labels(result.top(), ld.dataset);
  ASSERT_EQ(trained.size(), predicted.size());
  for (std::size_t i = 0; i < trained.size(); ++i)
    EXPECT_EQ(trained[i], predicted[i]);
}

TEST(Predict, GeneralizesToFreshDraws) {
  const data::LabeledDataset train = data::paper_dataset(3000, 10);
  const data::LabeledDataset test = data::paper_dataset(1000, 11);
  const Model model = Model::default_model(train.dataset);
  SearchConfig config;
  config.start_j_list = {5};
  config.max_tries = 2;
  config.em.max_cycles = 60;
  const SearchResult result = sequential_search(model, config);
  const auto predicted = predict_labels(result.top(), test.dataset);
  EXPECT_GT(data::adjusted_rand_index(test.labels, predicted), 0.75);
}

TEST(Predict, MembershipSumsToOne) {
  const data::LabeledDataset train = data::paper_dataset(500, 12);
  const data::LabeledDataset test = data::paper_dataset(50, 13);
  const Model model = Model::default_model(train.dataset);
  SearchConfig config;
  config.start_j_list = {3};
  config.max_tries = 1;
  config.em.max_cycles = 30;
  const SearchResult result = sequential_search(model, config);
  for (std::size_t i = 0; i < 50; ++i) {
    const auto m = predict_membership(result.top(), test.dataset, i);
    double sum = 0.0;
    for (const double v : m) sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(Predict, HeldOutLikelihoodPrefersTrueishModel) {
  const data::LabeledDataset train = data::paper_dataset(2000, 14);
  const data::LabeledDataset test = data::paper_dataset(800, 15);
  const Model model = Model::default_model(train.dataset);
  SearchConfig config;
  config.max_tries = 1;
  config.em.max_cycles = 50;
  config.start_j_list = {5};
  const SearchResult good = sequential_search(model, config);
  config.start_j_list = {1};
  const SearchResult trivial = sequential_search(model, config);
  EXPECT_GT(predict_log_likelihood(good.top(), test.dataset),
            predict_log_likelihood(trivial.top(), test.dataset));
}

TEST(Predict, SchemaMismatchThrows) {
  const data::LabeledDataset train = data::paper_dataset(100, 16);
  const Model model = Model::default_model(train.dataset);
  SearchConfig config;
  config.start_j_list = {2};
  config.max_tries = 1;
  config.em.max_cycles = 10;
  const SearchResult result = sequential_search(model, config);
  Dataset other(Schema({Attribute::real("different", 0.5)}), 3);
  EXPECT_THROW(predict_labels(result.top(), other), pac::Error);
}

// ---- case report ----

TEST(CaseReport, ListsBestAndSecondClasses) {
  const data::LabeledDataset ld = data::paper_dataset(100, 23);
  const Model model = Model::default_model(ld.dataset);
  SearchConfig config;
  config.start_j_list = {3};
  config.max_tries = 1;
  config.em.max_cycles = 20;
  const SearchResult result = sequential_search(model, config);
  std::ostringstream os;
  write_case_report(os, result.top(), 10);
  const std::string report = os.str();
  EXPECT_NE(report.find("case report"), std::string::npos);
  EXPECT_NE(report.find("90 more items"), std::string::npos);
  // 10 item lines + header + truncation note.
  std::size_t lines = 0;
  for (const char ch : report)
    if (ch == '\n') ++lines;
  EXPECT_EQ(lines, 12u);
}

TEST(CaseReport, FullListingWhenMaxIsZero) {
  const data::LabeledDataset ld = data::paper_dataset(20, 24);
  const Model model = Model::default_model(ld.dataset);
  SearchConfig config;
  config.start_j_list = {2};
  config.max_tries = 1;
  config.em.max_cycles = 10;
  const SearchResult result = sequential_search(model, config);
  std::ostringstream os;
  write_case_report(os, result.top());
  std::size_t lines = 0;
  for (const char ch : os.str())
    if (ch == '\n') ++lines;
  EXPECT_EQ(lines, 21u);  // header + 20 items, no truncation note
}

// ---- checkpoint / resume ----

TEST(Checkpoint, ClassificationRoundTripsExactly) {
  const data::LabeledDataset ld = data::paper_dataset(400, 17);
  const Model model = Model::default_model(ld.dataset);
  SearchConfig config;
  config.start_j_list = {3};
  config.max_tries = 1;
  config.em.max_cycles = 30;
  const SearchResult result = sequential_search(model, config);
  const Classification& original = result.top();

  std::stringstream buffer;
  save_classification(buffer, original);
  const Classification loaded = load_classification(buffer, model);

  ASSERT_EQ(loaded.num_classes(), original.num_classes());
  EXPECT_EQ(loaded.cs_score, original.cs_score);  // bitwise
  EXPECT_EQ(loaded.log_likelihood, original.log_likelihood);
  EXPECT_EQ(loaded.cycles, original.cycles);
  for (std::size_t j = 0; j < original.num_classes(); ++j) {
    EXPECT_EQ(loaded.log_pi(j), original.log_pi(j));
    EXPECT_EQ(loaded.weight(j), original.weight(j));
    const auto a = original.class_params(j);
    const auto b = loaded.class_params(j);
    for (std::size_t k = 0; k < a.size(); ++k) EXPECT_EQ(a[k], b[k]);
  }
  // Labels from the loaded classification are identical.
  const auto la = assign_labels(original);
  const auto lb = assign_labels(loaded);
  for (std::size_t i = 0; i < la.size(); ++i) ASSERT_EQ(la[i], lb[i]);
}

TEST(Checkpoint, SearchResultRoundTrips) {
  const data::LabeledDataset ld = data::paper_dataset(400, 18);
  const Model model = Model::default_model(ld.dataset);
  SearchConfig config;
  config.start_j_list = {2, 4};
  config.max_tries = 2;
  config.em.max_cycles = 25;
  const SearchResult result = sequential_search(model, config);

  std::stringstream buffer;
  save_search_result(buffer, result);
  const SearchResult loaded = load_search_result(buffer, model);
  EXPECT_EQ(loaded.tries, result.tries);
  EXPECT_EQ(loaded.duplicates, result.duplicates);
  EXPECT_EQ(loaded.total_cycles, result.total_cycles);
  ASSERT_EQ(loaded.best.size(), result.best.size());
  for (std::size_t b = 0; b < result.best.size(); ++b) {
    EXPECT_EQ(loaded.best[b].classification.cs_score,
              result.best[b].classification.cs_score);
    EXPECT_EQ(loaded.best[b].try_index, result.best[b].try_index);
    EXPECT_EQ(loaded.best[b].j_requested, result.best[b].j_requested);
    EXPECT_EQ(loaded.best[b].converged, result.best[b].converged);
  }
}

TEST(Checkpoint, ResumeMatchesUninterruptedSearch) {
  const data::LabeledDataset ld = data::paper_dataset(500, 19);
  const Model model = Model::default_model(ld.dataset);
  SearchConfig config;
  config.start_j_list = {2, 4, 6, 3};
  config.em.max_cycles = 25;

  // Reference: all 4 tries in one go.
  config.max_tries = 4;
  const SearchResult reference = sequential_search(model, config);

  // Interrupted: 2 tries, checkpoint through a stream, resume for 4.
  config.max_tries = 2;
  const SearchResult half = sequential_search(model, config);
  std::stringstream buffer;
  save_search_result(buffer, half);
  const SearchResult restored = load_search_result(buffer, model);

  Reducer identity;
  EmWorker worker(model, data::ItemRange{0, 500}, identity);
  config.max_tries = 4;
  const TryRunner runner = [&](int try_index, int j) {
    TryResult out{Classification(model, static_cast<std::size_t>(j))};
    worker.random_init(out.classification, config.seed,
                       static_cast<std::uint64_t>(try_index), config.em);
    out.converged = worker.converge(out.classification, config.em).converged;
    out.classification = worker.prune_and_refit(out.classification, config.em);
    return out;
  };
  const SearchResult resumed =
      resume_search(model, config, runner, restored);

  EXPECT_EQ(resumed.tries, reference.tries);
  EXPECT_EQ(resumed.duplicates, reference.duplicates);
  ASSERT_EQ(resumed.best.size(), reference.best.size());
  for (std::size_t b = 0; b < reference.best.size(); ++b)
    EXPECT_EQ(resumed.best[b].classification.cs_score,
              reference.best[b].classification.cs_score);
}

TEST(Checkpoint, RejectsStructureMismatch) {
  const data::LabeledDataset ld = data::paper_dataset(100, 20);
  const Model model = Model::default_model(ld.dataset);
  SearchConfig config;
  config.start_j_list = {2};
  config.max_tries = 1;
  config.em.max_cycles = 10;
  const SearchResult result = sequential_search(model, config);
  std::stringstream buffer;
  save_classification(buffer, result.top());

  // A model with a different per-class footprint must be rejected.
  TermSpec keep;
  keep.kind = TermKind::kSingleNormal;
  keep.attributes = {0};
  TermSpec drop;
  drop.kind = TermKind::kIgnore;
  drop.attributes = {1};
  const Model other(ld.dataset, {keep, drop});
  EXPECT_THROW(load_classification(buffer, other), pac::Error);
}

TEST(Checkpoint, RejectsGarbageInput) {
  const data::LabeledDataset ld = data::paper_dataset(50, 21);
  const Model model = Model::default_model(ld.dataset);
  std::stringstream garbage("not a checkpoint at all");
  EXPECT_THROW(load_classification(garbage, model), pac::Error);
  std::stringstream truncated("pac-classification v1\nclasses 3");
  EXPECT_THROW(load_classification(truncated, model), pac::Error);
}

TEST(Checkpoint, FileRoundTrip) {
  const data::LabeledDataset ld = data::paper_dataset(200, 22);
  const Model model = Model::default_model(ld.dataset);
  SearchConfig config;
  config.start_j_list = {3};
  config.max_tries = 1;
  config.em.max_cycles = 15;
  const SearchResult result = sequential_search(model, config);
  const std::string path = "/tmp/pac_test_checkpoint.search";
  save_search_result_file(path, result);
  const SearchResult loaded = load_search_result_file(path, model);
  EXPECT_EQ(loaded.top().cs_score, result.top().cs_score);
  EXPECT_THROW(load_search_result_file("/nonexistent/x.search", model),
               pac::Error);
}

}  // namespace
}  // namespace pac::ac
