// The out-of-core determinism contract (DESIGN.md §10): at fixed block
// size, EM trajectories are memcmp-identical between the resident and
// chunk-backed Dataset backends — across intra-rank thread counts and
// across all three transports — even when the chunk budget is tiny enough
// to force continuous eviction mid-E-step.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "autoclass/em.hpp"
#include "autoclass/search.hpp"
#include "data/format.hpp"
#include "data/io.hpp"
#include "data/synth.hpp"
#include "transport_test_util.hpp"

namespace pac {
namespace {

/// Write the standard synthetic dataset to a .pacb with deliberately odd,
/// small chunks (so 256-item kernel blocks straddle chunk borders) and hand
/// back resident and chunked views of the same bytes.  The ~4 KB budget
/// holds about one chunk, forcing eviction throughout every E-step.
struct BackendPair {
  std::string path;
  data::Dataset resident;
  data::Dataset chunked;

  explicit BackendPair(std::size_t n, std::uint64_t seed)
      : path("/tmp/pac_ooc_" + std::to_string(::getpid()) + "_" +
             std::to_string(seed) + ".pacb"),
        resident(data::paper_dataset(n, seed).dataset) {
    data::format::write_pacb_file(path, resident, /*chunk_rows=*/193);
    chunked = data::Dataset(data::ChunkedStore::open(path,
                                                     /*budget_bytes=*/4096));
  }
  ~BackendPair() { std::remove(path.c_str()); }
};

/// Run `cycles` full EM cycles single-rank and append every weight,
/// parameter, class weight, and log-likelihood to `sink`.
std::vector<double> em_trajectory(const data::Dataset& dataset, int threads,
                                  int cycles) {
  const ac::Model model = ac::Model::default_model(dataset);
  ac::Reducer identity;
  ac::EmWorker worker(model, data::ItemRange{0, dataset.num_items()},
                      identity);
  ac::Classification c(model, 4);
  ac::EmConfig config;
  config.threads = threads;
  worker.random_init(c, 515, 0, config);
  std::vector<double> sink;
  for (int cycle = 0; cycle < cycles; ++cycle) {
    worker.update_parameters(c);
    sink.push_back(worker.update_wts(c));
    const std::span<const double> w = worker.local_weights();
    sink.insert(sink.end(), w.begin(), w.end());
    const std::span<const double> params = c.all_params();
    sink.insert(sink.end(), params.begin(), params.end());
    for (std::size_t j = 0; j < c.num_classes(); ++j)
      sink.push_back(c.weight(j));
  }
  return sink;
}

void expect_same_trajectory(const std::vector<double>& a,
                            const std::vector<double>& b,
                            const char* label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(double)), 0)
      << label << ": chunked backend diverged from resident";
}

TEST(OutOfCore, EmTrajectoryBitIdenticalAcrossThreadCounts) {
  const BackendPair pair(1500, 51);
  for (const int threads : {1, 2, 4}) {
    SCOPED_TRACE(threads);
    const std::vector<double> res = em_trajectory(pair.resident, threads, 4);
    const std::vector<double> chk = em_trajectory(pair.chunked, threads, 4);
    expect_same_trajectory(res, chk, "threads");
    // And the thread count itself must not matter (the existing invariant,
    // re-pinned on the chunked backend).
    expect_same_trajectory(chk, em_trajectory(pair.chunked, 1, 4),
                           "threads-vs-1");
  }
}

TEST(OutOfCore, SearchResultIdenticalAcrossBackends) {
  const BackendPair pair(1200, 52);
  ac::SearchConfig config;
  config.start_j_list = {3, 5};
  config.max_tries = 2;
  config.em.max_cycles = 20;
  const ac::SearchResult res =
      ac::sequential_search(ac::Model::default_model(pair.resident), config);
  const ac::SearchResult chk =
      ac::sequential_search(ac::Model::default_model(pair.chunked), config);
  ASSERT_EQ(res.best.size(), chk.best.size());
  for (std::size_t b = 0; b < res.best.size(); ++b) {
    const ac::Classification& rc = res.best[b].classification;
    const ac::Classification& cc = chk.best[b].classification;
    EXPECT_EQ(std::memcmp(&rc.cs_score, &cc.cs_score, sizeof(double)), 0);
    EXPECT_EQ(std::memcmp(&rc.log_likelihood, &cc.log_likelihood,
                          sizeof(double)),
              0);
    ASSERT_EQ(rc.all_params().size(), cc.all_params().size());
    EXPECT_EQ(std::memcmp(rc.all_params().data(), cc.all_params().data(),
                          rc.all_params().size() * sizeof(double)),
              0)
        << "leaderboard entry " << b;
  }
}

/// One rank's cycle under a transport world, run over both backends.  Each
/// rank opens its own chunked view (ranks-as-threads share nothing, exactly
/// like pac_launch'd processes each mapping the file).
std::vector<std::vector<double>> transport_trajectories(
    const data::Dataset& dataset, int ranks, bool hybrid) {
  std::vector<std::vector<double>> sinks(
      static_cast<std::size_t>(ranks));
  const ac::Model model = ac::Model::default_model(dataset);
  const auto fn = [&](mp::Comm& comm) {
    mp::testutil::cycle_suite(comm, model, /*scalar=*/false, /*threads=*/2,
                              sinks[static_cast<std::size_t>(comm.rank())]);
  };
  if (hybrid) {
    mp::testutil::run_hybrid_world(ranks, fn);
  } else {
    mp::testutil::run_socket_world(ranks, fn);
  }
  return sinks;
}

TEST(OutOfCore, TransportsSeeIdenticalTrajectories) {
  const BackendPair pair(900, 53);
  for (const int ranks : {2, 4}) {
    SCOPED_TRACE(ranks);
    // In-process reference on the resident backend...
    std::vector<std::vector<double>> reference(
        static_cast<std::size_t>(ranks));
    {
      const ac::Model model = ac::Model::default_model(pair.resident);
      mp::World::Config cfg;
      cfg.num_ranks = ranks;
      mp::World world(cfg);
      world.run([&](mp::Comm& comm) {
        mp::testutil::cycle_suite(comm, model, /*scalar=*/false,
                                  /*threads=*/2,
                                  reference[static_cast<std::size_t>(
                                      comm.rank())]);
      });
    }
    // ...must match the chunked backend on every transport.
    mp::testutil::expect_bit_identical(
        transport_trajectories(pair.chunked, ranks, /*hybrid=*/false),
        reference);
    mp::testutil::expect_bit_identical(
        transport_trajectories(pair.chunked, ranks, /*hybrid=*/true),
        reference);
  }
}

TEST(OutOfCore, ChunkedBackendRefusesMutation) {
  const BackendPair pair(300, 54);
  data::Dataset chunked = pair.chunked;
  EXPECT_THROW(chunked.set_real(0, 0, 1.0), pac::Error);
  EXPECT_THROW(chunked.real_column(0), pac::Error);
}

}  // namespace
}  // namespace pac
