// Tests for the EM engine: weight normalization, monotone improvement,
// convergence, pruning, parameter recovery, and missing-data handling.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <sstream>

#include "autoclass/em.hpp"
#include "autoclass/report.hpp"
#include "autoclass/search.hpp"
#include "data/synth.hpp"
#include "util/error.hpp"

namespace pac::ac {
namespace {

EmWorker whole_data_worker(const Model& model, Reducer& reducer) {
  return EmWorker(model, data::ItemRange{0, model.dataset().num_items()},
                  reducer);
}

TEST(EmWorker, RandomInitWeightsSumToItemCount) {
  const data::LabeledDataset ld = data::paper_dataset(1000, 1);
  const Model model = Model::default_model(ld.dataset);
  Reducer identity;
  EmWorker worker = whole_data_worker(model, identity);
  Classification c(model, 4);
  worker.random_init(c, 99, 0, EmConfig{});
  double total = 0.0;
  for (std::size_t j = 0; j < 4; ++j) total += c.weight(j);
  EXPECT_NEAR(total, 1000.0, 1e-9);
  // Smoothed seeding: the spread share guarantees every class a floor of
  // N * (1 - hard) / (J - 1) even if its seed attracts nothing.
  for (std::size_t j = 0; j < 4; ++j) EXPECT_GT(c.weight(j), 10.0);
}

TEST(EmWorker, RandomInitDependsOnTryIndex) {
  const data::LabeledDataset ld = data::paper_dataset(100, 2);
  const Model model = Model::default_model(ld.dataset);
  Reducer identity;
  EmWorker worker = whole_data_worker(model, identity);
  Classification a(model, 4), b(model, 4), c(model, 4);
  worker.random_init(a, 7, 0, EmConfig{});
  worker.random_init(b, 7, 1, EmConfig{});
  worker.random_init(c, 7, 0, EmConfig{});
  EXPECT_NE(a.weight(0), b.weight(0));   // different try, different init
  EXPECT_EQ(a.weight(0), c.weight(0));   // same try, identical init
}

TEST(EmWorker, UpdateWtsProducesNormalizedMemberships) {
  const data::LabeledDataset ld = data::paper_dataset(500, 3);
  const Model model = Model::default_model(ld.dataset);
  Reducer identity;
  EmWorker worker = whole_data_worker(model, identity);
  Classification c(model, 3);
  worker.random_init(c, 1, 0, EmConfig{});
  worker.update_parameters(c);
  worker.update_wts(c);
  const auto weights = worker.local_weights();
  ASSERT_EQ(weights.size(), 500u * 3u);
  for (std::size_t i = 0; i < 500; ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < 3; ++j) {
      const double w = weights[i * 3 + j];
      ASSERT_GE(w, 0.0);
      ASSERT_LE(w, 1.0 + 1e-12);
      row_sum += w;
    }
    ASSERT_NEAR(row_sum, 1.0, 1e-9);
  }
  // Class weights are the column sums.
  for (std::size_t j = 0; j < 3; ++j) {
    double col = 0.0;
    for (std::size_t i = 0; i < 500; ++i) col += weights[i * 3 + j];
    EXPECT_NEAR(col, c.weight(j), 1e-9);
  }
}

TEST(EmWorker, LogLikelihoodImprovesAcrossCycles) {
  const data::LabeledDataset ld = data::paper_dataset(2000, 4);
  const Model model = Model::default_model(ld.dataset);
  Reducer identity;
  EmWorker worker = whole_data_worker(model, identity);
  Classification c(model, 5);
  worker.random_init(c, 11, 0, EmConfig{});
  worker.update_parameters(c);
  double previous = worker.update_wts(c);
  for (int cycle = 0; cycle < 15; ++cycle) {
    worker.update_parameters(c);
    const double current = worker.update_wts(c);
    // MAP-EM is monotone up to the prior terms; allow a hair of slack.
    EXPECT_GT(current, previous - 1e-6);
    previous = current;
  }
}

TEST(EmWorker, ConvergesOnEasyData) {
  const std::vector<data::GaussianComponent> mix = {
      {0.5, {0.0}, {0.5}}, {0.5, {50.0}, {0.5}}};
  const data::LabeledDataset ld = data::gaussian_mixture(mix, 1000, 5);
  const Model model = Model::default_model(ld.dataset);
  Reducer identity;
  EmWorker worker = whole_data_worker(model, identity);
  Classification c(model, 2);
  EmConfig config;
  worker.random_init(c, 3, 0, config);
  const ConvergeOutcome outcome = worker.converge(c, config);
  EXPECT_TRUE(outcome.converged);
  EXPECT_LT(outcome.cycles, config.max_cycles);
  // Two classes centred near 0 and 50 (order by weight is arbitrary).
  c.sort_classes_by_weight();
  std::vector<double> means = {c.param_block(0, 0)[0],
                               c.param_block(1, 0)[0]};
  std::sort(means.begin(), means.end());
  EXPECT_NEAR(means[0], 0.0, 0.2);
  EXPECT_NEAR(means[1], 50.0, 0.2);
  // Perfectly separated classes: memberships are essentially hard
  // (the paper's Sec. 2 "well separated" criterion).
  EXPECT_GT(mean_max_membership(c), 0.99);
}

TEST(EmWorker, RecoversMixingProportions) {
  const std::vector<data::GaussianComponent> mix = {
      {0.7, {0.0}, {1.0}}, {0.3, {30.0}, {1.0}}};
  const data::LabeledDataset ld = data::gaussian_mixture(mix, 5000, 6);
  const Model model = Model::default_model(ld.dataset);
  Reducer identity;
  EmWorker worker = whole_data_worker(model, identity);
  Classification c(model, 2);
  EmConfig config;
  worker.random_init(c, 5, 0, config);
  worker.converge(c, config);
  c.sort_classes_by_weight();
  EXPECT_NEAR(c.weight(0) / 5000.0, 0.7, 0.02);
  EXPECT_NEAR(c.weight(1) / 5000.0, 0.3, 0.02);
}

TEST(EmWorker, PruningRemovesEmptyClasses) {
  // Far more classes than structure: most must wither and be absorbed.
  const std::vector<data::GaussianComponent> mix = {
      {0.5, {0.0}, {0.3}}, {0.5, {20.0}, {0.3}}};
  const data::LabeledDataset ld = data::gaussian_mixture(mix, 400, 7);
  const Model model = Model::default_model(ld.dataset);
  Reducer identity;
  EmWorker worker = whole_data_worker(model, identity);
  Classification c(model, 16);
  EmConfig config;
  config.max_cycles = 120;
  worker.random_init(c, 17, 0, config);
  worker.converge(c, config);
  const Classification pruned = worker.prune_and_refit(c, config);
  EXPECT_LT(pruned.num_classes(), 16u);
  EXPECT_EQ(pruned.initial_classes, 16);
  // Every surviving class clears the weight floor.
  for (std::size_t j = 0; j < pruned.num_classes(); ++j)
    EXPECT_GE(pruned.weight(j), config.min_class_weight);
  // Scores are refreshed for the pruned model.
  EXPECT_TRUE(std::isfinite(pruned.cs_score));
}

TEST(EmWorker, PruningDisabledKeepsAllClasses) {
  const data::LabeledDataset ld = data::paper_dataset(300, 8);
  const Model model = Model::default_model(ld.dataset);
  Reducer identity;
  EmWorker worker = whole_data_worker(model, identity);
  Classification c(model, 8);
  EmConfig config;
  config.min_class_weight = 0.0;  // disabled
  worker.random_init(c, 19, 0, config);
  worker.converge(c, config);
  const Classification same = worker.prune_and_refit(c, config);
  EXPECT_EQ(same.num_classes(), 8u);
}

TEST(EmWorker, HandlesMissingValues) {
  data::LabeledDataset ld = data::paper_dataset(1500, 9);
  data::inject_missing(ld.dataset, 0.15, 10);
  const Model model = Model::default_model(ld.dataset);
  Reducer identity;
  EmWorker worker = whole_data_worker(model, identity);
  Classification c(model, 5);
  EmConfig config;
  worker.random_init(c, 23, 0, config);
  const ConvergeOutcome outcome = worker.converge(c, config);
  EXPECT_GT(outcome.cycles, 0);
  EXPECT_TRUE(std::isfinite(c.log_likelihood));
  EXPECT_TRUE(std::isfinite(c.cs_score));
}

TEST(EmWorker, FitsDiscreteDataWithMultinomials) {
  const std::vector<data::CategoricalComponent> mix = {
      {0.5, {{0.9, 0.05, 0.05}, {0.8, 0.2}}},
      {0.5, {{0.05, 0.05, 0.9}, {0.2, 0.8}}},
  };
  const data::LabeledDataset ld = data::categorical_mixture(mix, 3000, 11);
  const Model model = Model::default_model(ld.dataset);
  // Discrete seeds can coincide, so use a few restarts (as AutoClass does)
  // and score the best classification.
  SearchConfig search;
  search.start_j_list = {2};
  search.max_tries = 3;
  search.em.max_cycles = 60;
  const SearchResult result = sequential_search(model, search);
  const auto labels = assign_labels(result.top());
  EXPECT_GT(data::adjusted_rand_index(ld.labels, labels), 0.5);
}

TEST(EmWorker, FitsCorrelatedDataWithMultiNormalBlock) {
  const double r = 0.95;
  const std::vector<data::CorrelatedComponent> mix = {
      {0.5, {0.0, 0.0}, {1.0, 0.0, r, std::sqrt(1 - r * r)}},
      {0.5, {0.0, 6.0}, {1.0, 0.0, -r, std::sqrt(1 - r * r)}},
  };
  const data::LabeledDataset ld = data::correlated_mixture(mix, 3000, 12);
  TermSpec block;
  block.kind = TermKind::kMultiNormal;
  block.attributes = {0, 1};
  const Model model(ld.dataset, {block});
  Reducer identity;
  EmWorker worker = whole_data_worker(model, identity);
  Classification c(model, 2);
  EmConfig config;
  worker.random_init(c, 31, 0, config);
  worker.converge(c, config);
  const auto labels = assign_labels(c);
  EXPECT_GT(data::adjusted_rand_index(ld.labels, labels), 0.9);
}

TEST(EmWorker, CsScoreBelowLogLikelihood) {
  // The marginal-likelihood approximation integrates over parameters, so it
  // must be below the maximized likelihood.
  const data::LabeledDataset ld = data::paper_dataset(800, 13);
  const Model model = Model::default_model(ld.dataset);
  Reducer identity;
  EmWorker worker = whole_data_worker(model, identity);
  Classification c(model, 4);
  EmConfig config;
  worker.random_init(c, 37, 0, config);
  worker.converge(c, config);
  EXPECT_LT(c.cs_score, c.log_likelihood);
  EXPECT_LT(c.bic_score, c.log_likelihood);
}

TEST(EmWorker, MixedTypeDataEndToEnd) {
  std::vector<data::MixedComponent> mix(2);
  mix[0] = {0.6, {0.0}, {1.0}, {{0.9, 0.1}}};
  mix[1] = {0.4, {8.0}, {1.0}, {{0.1, 0.9}}};
  const data::LabeledDataset ld = data::mixed_mixture(mix, 2500, 14);
  const Model model = Model::default_model(ld.dataset);
  Reducer identity;
  EmWorker worker = whole_data_worker(model, identity);
  Classification c(model, 2);
  EmConfig config;
  worker.random_init(c, 41, 0, config);
  worker.converge(c, config);
  const auto labels = assign_labels(c);
  EXPECT_GT(data::adjusted_rand_index(ld.labels, labels), 0.9);
}

TEST(EmWorker, StatisticsMatchManualAccumulation) {
  // The statistics buffer after update_parameters must equal hand-computed
  // weighted sums over the membership matrix.
  const data::LabeledDataset ld = data::paper_dataset(120, 33);
  const Model model = Model::default_model(ld.dataset);
  Reducer identity;
  EmWorker worker = whole_data_worker(model, identity);
  Classification c(model, 3);
  EmConfig config;
  worker.random_init(c, 71, 0, config);
  worker.update_parameters(c);
  worker.update_wts(c);
  worker.update_parameters(c);

  const auto weights = worker.local_weights();
  const auto stats = worker.statistics();
  const std::size_t spc = model.stats_per_class();
  for (std::size_t j = 0; j < 3; ++j) {
    for (std::size_t a = 0; a < 2; ++a) {
      // single_normal stats: [sw, swx, swx2] at offset a*3.
      double sw = 0.0, swx = 0.0, swx2 = 0.0;
      for (std::size_t i = 0; i < 120; ++i) {
        const double w = weights[i * 3 + j];
        const double x = ld.dataset.real_value(i, a);
        sw += w;
        swx += w * x;
        swx2 += w * x * x;
      }
      const double* block = stats.data() + j * spc + model.stats_offset(a);
      EXPECT_NEAR(block[0], sw, 1e-9);
      EXPECT_NEAR(block[1], swx, 1e-9);
      EXPECT_NEAR(block[2], swx2, 1e-8);
    }
  }
}

TEST(EmWorker, ChargesReportedToReducer) {
  // A counting reducer must see one weights-reduce and one stats-reduce per
  // cycle plus the per-phase charge callbacks.
  class CountingReducer : public Reducer {
   public:
    void reduce_weights(std::span<double>) override { ++weight_reduces; }
    void reduce_statistics(std::span<double>, std::size_t) override {
      ++stats_reduces;
    }
    void charge(const PhaseWork& work) override {
      switch (work.phase) {
        case Phase::kUpdateWts: ++wts_charges; break;
        case Phase::kUpdateParams: ++params_charges; break;
        case Phase::kUpdateApprox: ++approx_charges; break;
        default: break;
      }
    }
    int weight_reduces = 0, stats_reduces = 0;
    int wts_charges = 0, params_charges = 0, approx_charges = 0;
  };
  const data::LabeledDataset ld = data::paper_dataset(200, 15);
  const Model model = Model::default_model(ld.dataset);
  CountingReducer reducer;
  EmWorker worker(model, data::ItemRange{0, 200}, reducer);
  Classification c(model, 3);
  EmConfig config;
  worker.random_init(c, 43, 0, config);
  const int before_wts = reducer.weight_reduces;
  worker.update_parameters(c);
  worker.update_wts(c);
  worker.update_approximations(c);
  EXPECT_EQ(reducer.weight_reduces, before_wts + 1);
  EXPECT_EQ(reducer.stats_reduces, 1);
  EXPECT_EQ(reducer.wts_charges, 1);
  EXPECT_EQ(reducer.params_charges, 1);
  EXPECT_EQ(reducer.approx_charges, 1);
}

TEST(EmWorker, SigmaDeltaConvergenceAlsoStops) {
  const std::vector<data::GaussianComponent> mix = {
      {0.5, {0.0}, {0.5}}, {0.5, {40.0}, {0.5}}};
  const data::LabeledDataset ld = data::gaussian_mixture(mix, 800, 30);
  const Model model = Model::default_model(ld.dataset);
  Reducer identity;
  EmWorker worker = whole_data_worker(model, identity);
  Classification c(model, 2);
  EmConfig config;
  config.convergence = ConvergenceKind::kSigmaDelta;
  config.sigma_window = 4;
  worker.random_init(c, 61, 0, config);
  const ConvergeOutcome outcome = worker.converge(c, config);
  EXPECT_TRUE(outcome.converged);
  EXPECT_LT(outcome.cycles, config.max_cycles);
  c.sort_classes_by_weight();
  std::vector<double> means = {c.param_block(0, 0)[0],
                               c.param_block(1, 0)[0]};
  std::sort(means.begin(), means.end());
  EXPECT_NEAR(means[0], 0.0, 0.2);
  EXPECT_NEAR(means[1], 40.0, 0.2);
}

TEST(EmWorker, SigmaDeltaAndRelDeltaReachTheSameOptimum) {
  const data::LabeledDataset ld = data::paper_dataset(700, 31);
  const Model model = Model::default_model(ld.dataset);
  Reducer identity;
  EmWorker worker = whole_data_worker(model, identity);
  EmConfig rel;
  EmConfig sigma;
  sigma.convergence = ConvergenceKind::kSigmaDelta;
  Classification a(model, 4), b(model, 4);
  worker.random_init(a, 63, 0, rel);
  worker.converge(a, rel);
  worker.random_init(b, 63, 0, sigma);
  worker.converge(b, sigma);
  EXPECT_NEAR(a.cs_score, b.cs_score, 1e-3 * (1.0 + std::abs(a.cs_score)));
}

TEST(EmWorker, SigmaWindowValidated) {
  const data::LabeledDataset ld = data::paper_dataset(50, 32);
  const Model model = Model::default_model(ld.dataset);
  Reducer identity;
  EmWorker worker = whole_data_worker(model, identity);
  Classification c(model, 2);
  EmConfig config;
  config.convergence = ConvergenceKind::kSigmaDelta;
  config.sigma_window = 1;
  worker.random_init(c, 65, 0, config);
  EXPECT_THROW(worker.converge(c, config), pac::Error);
}

TEST(EmWorker, RequiresInitBeforeCycling) {
  const data::LabeledDataset ld = data::paper_dataset(50, 16);
  const Model model = Model::default_model(ld.dataset);
  Reducer identity;
  EmWorker worker = whole_data_worker(model, identity);
  Classification c(model, 3);
  EXPECT_THROW(worker.update_wts(c), pac::Error);
  EXPECT_THROW(worker.update_parameters(c), pac::Error);
}

// ---- report utilities ----

TEST(Report, MembershipSumsToOne) {
  const data::LabeledDataset ld = data::paper_dataset(300, 17);
  const Model model = Model::default_model(ld.dataset);
  Reducer identity;
  EmWorker worker = whole_data_worker(model, identity);
  Classification c(model, 4);
  EmConfig config;
  worker.random_init(c, 47, 0, config);
  worker.converge(c, config);
  for (std::size_t i = 0; i < 10; ++i) {
    const auto m = membership(c, i * 17);
    EXPECT_NEAR(std::accumulate(m.begin(), m.end(), 0.0), 1.0, 1e-9);
  }
}

TEST(Report, InfluenceReportIsSortedAndComplete) {
  const data::LabeledDataset ld = data::paper_dataset(300, 18);
  const Model model = Model::default_model(ld.dataset);
  Reducer identity;
  EmWorker worker = whole_data_worker(model, identity);
  Classification c(model, 3);
  EmConfig config;
  worker.random_init(c, 53, 0, config);
  worker.converge(c, config);
  const auto report = influence_report(c);
  EXPECT_EQ(report.size(), 3u * 2u);
  for (std::size_t i = 1; i < report.size(); ++i)
    EXPECT_GE(report[i - 1].influence, report[i].influence);
}

TEST(Report, PrintReportMentionsClassesAndInfluence) {
  const data::LabeledDataset ld = data::paper_dataset(200, 19);
  const Model model = Model::default_model(ld.dataset);
  Reducer identity;
  EmWorker worker = whole_data_worker(model, identity);
  Classification c(model, 2);
  EmConfig config;
  worker.random_init(c, 59, 0, config);
  worker.converge(c, config);
  std::ostringstream os;
  print_report(os, c);
  EXPECT_NE(os.str().find("class 0"), std::string::npos);
  EXPECT_NE(os.str().find("Influence"), std::string::npos);
}

}  // namespace
}  // namespace pac::ac
