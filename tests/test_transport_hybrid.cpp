// Hybrid-transport tests: the same loopback multi-rank pattern as
// test_transport_socket (threads standing in for pac_launch'd processes,
// each with its own World), but on the hybrid backend — full socket mesh
// plus one shared-memory ring pair per same-host rank pair.  The suites
// re-assert the DESIGN.md determinism contract across the third backend,
// and the ShmRing section unit-tests the SPSC ring itself: wraparound,
// chained large frames, backpressure, and peer-death wakeups.
#include <gtest/gtest.h>

#include <sys/types.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <exception>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "autoclass/em.hpp"
#include "core/pautoclass.hpp"
#include "data/synth.hpp"
#include "mp/comm.hpp"
#include "mp/transport/shm_ring.hpp"
#include "mp/transport/transport.hpp"
#include "transport_test_util.hpp"
#include "util/error.hpp"

namespace pac::mp {
namespace {

using testutil::collective_suite;
using testutil::cycle_suite;
using testutil::estep_suite;
using testutil::expect_bit_identical;
using testutil::fast_math_cycle_suite;
using testutil::HybridSegments;
using testutil::hybrid_config;
using testutil::run_hybrid_world;
using testutil::run_socket_world;
using testutil::run_world_threads;
using testutil::unique_address;

TEST(TransportHybrid, ValueRoundTripRoutesOverShm) {
  std::vector<transport::TransportStats> stats(2);
  run_hybrid_world(2, [&](Comm& comm) {
    EXPECT_TRUE(comm.distributed());
    EXPECT_STREQ(comm.backend_name(), "hybrid");
    std::vector<double> buf(64);
    if (comm.rank() == 0) {
      std::iota(buf.begin(), buf.end(), 0.5);
      comm.send<double>(1, 3, buf);
      comm.send_value<int>(1, 9, 1234);
    } else {
      const Status st = comm.recv<double>(0, 3, buf);
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 3);
      EXPECT_EQ(st.bytes, 64 * sizeof(double));
      EXPECT_DOUBLE_EQ(buf[63], 63.5);
      EXPECT_EQ(comm.recv_value<int>(0, 9), 1234);
    }
    comm.barrier();
    stats[static_cast<std::size_t>(comm.rank())] = comm.transport_stats();
  });
  for (int r = 0; r < 2; ++r) {
    const transport::TransportStats& s = stats[static_cast<std::size_t>(r)];
    // Both ranks share one host: ALL data frames must have routed over the
    // ring — socket traffic is the totals minus the shm breakdown.
    EXPECT_EQ(s.shm_peers, 1u) << "rank " << r;
    EXPECT_GT(s.shm_messages_sent, 0u) << "rank " << r;
    EXPECT_EQ(s.messages_sent, s.shm_messages_sent) << "rank " << r;
    EXPECT_EQ(s.messages_received, s.shm_messages_received) << "rank " << r;
    EXPECT_EQ(s.bytes_sent, s.shm_bytes_sent) << "rank " << r;
  }
}

TEST(TransportHybrid, MixedHostTokensFallBackToSocket) {
  // Two ranks with segments on the table but DIFFERENT host tokens: the
  // routing rule must silently keep the socket (a cross-host pair whose
  // launcher handed out fds by mistake must degrade, not die).
  constexpr int kRanks = 2;
  const std::string address = unique_address();
  const HybridSegments segs(kRanks);
  std::vector<transport::TransportStats> stats(kRanks);
  run_world_threads(
      kRanks,
      [&](int r) {
        World::Config cfg = hybrid_config(address, r, kRanks, segs);
        cfg.shm.host_token = segs.host_token + static_cast<std::uint64_t>(r);
        return cfg;
      },
      [&](Comm& comm) {
        if (comm.rank() == 0) comm.send_value<int>(1, 1, 42);
        if (comm.rank() == 1) {
          EXPECT_EQ(comm.recv_value<int>(0, 1), 42);
        }
        comm.barrier();
        stats[static_cast<std::size_t>(comm.rank())] = comm.transport_stats();
      });
  for (const transport::TransportStats& s : stats) {
    EXPECT_EQ(s.shm_peers, 0u);
    EXPECT_EQ(s.shm_messages_sent, 0u);
    EXPECT_GT(s.messages_sent, 0u);
  }
}

TEST(TransportHybrid, CollectivesBitIdenticalAcrossAllThreeBackends) {
  constexpr int kRanks = 4;
  std::vector<std::vector<double>> hybrid_sink(kRanks), socket_sink(kRanks),
      modeled_sink(kRanks);
  run_hybrid_world(kRanks, [&](Comm& comm) {
    collective_suite(comm, hybrid_sink[static_cast<std::size_t>(comm.rank())]);
  });
  run_socket_world(kRanks, [&](Comm& comm) {
    collective_suite(comm, socket_sink[static_cast<std::size_t>(comm.rank())]);
  });
  World::Config cfg;
  cfg.num_ranks = kRanks;
  cfg.machine = net::ideal_machine();
  World world(cfg);
  world.run([&](Comm& comm) {
    collective_suite(comm,
                     modeled_sink[static_cast<std::size_t>(comm.rank())]);
  });
  expect_bit_identical(hybrid_sink, socket_sink);
  expect_bit_identical(hybrid_sink, modeled_sink);
}

TEST(TransportHybrid, CollectivesBitIdenticalThroughTinyRings) {
  // A 4 KiB ring forces every multi-KB collective payload through the
  // chained-chunk path; results must not change.
  constexpr int kRanks = 3;
  std::vector<std::vector<double>> tiny_sink(kRanks), modeled_sink(kRanks);
  run_hybrid_world(
      kRanks,
      [&](Comm& comm) {
        collective_suite(comm, tiny_sink[static_cast<std::size_t>(comm.rank())]);
      },
      /*kahan_reductions=*/false, /*ring_bytes=*/4096);
  World::Config cfg;
  cfg.num_ranks = kRanks;
  cfg.machine = net::ideal_machine();
  World world(cfg);
  world.run([&](Comm& comm) {
    collective_suite(comm,
                     modeled_sink[static_cast<std::size_t>(comm.rank())]);
  });
  expect_bit_identical(tiny_sink, modeled_sink);
}

TEST(TransportHybrid, EStepKernelBitIdenticalToInProcess) {
  constexpr int kRanks = 3;
  data::LabeledDataset ld = data::mixed_mixture(
      {{0.5, {0.0, 1.0}, {1.0, 0.5}, {{0.8, 0.2}, {0.1, 0.6, 0.3}}},
       {0.5, {3.0, -1.0}, {0.7, 1.2}, {{0.3, 0.7}, {0.5, 0.2, 0.3}}}},
      600, 11);
  data::inject_missing(ld.dataset, 0.05, 7);
  const ac::Model model = ac::Model::default_model(ld.dataset);

  std::vector<std::vector<double>> hybrid(kRanks), modeled(kRanks);
  run_hybrid_world(kRanks, [&](Comm& comm) {
    estep_suite(comm, model, /*scalar=*/false,
                hybrid[static_cast<std::size_t>(comm.rank())]);
  });
  World::Config cfg;
  cfg.num_ranks = kRanks;
  cfg.machine = net::ideal_machine();
  World world(cfg);
  world.run([&](Comm& comm) {
    estep_suite(comm, model, /*scalar=*/false,
                modeled[static_cast<std::size_t>(comm.rank())]);
  });
  expect_bit_identical(hybrid, modeled);
}

TEST(TransportHybrid, EmCycleAndThreadsBitIdenticalAcrossBackends) {
  constexpr int kRanks = 3;
  data::LabeledDataset ld = data::mixed_mixture(
      {{0.5, {0.0, 1.0}, {1.0, 0.5}, {{0.8, 0.2}, {0.1, 0.6, 0.3}}},
       {0.5, {3.0, -1.0}, {0.7, 1.2}, {{0.3, 0.7}, {0.5, 0.2, 0.3}}}},
      600, 13);
  data::inject_missing(ld.dataset, 0.05, 8);
  const ac::Model model = ac::Model::default_model(ld.dataset);

  std::vector<std::vector<double>> hybrid(kRanks), threaded(kRanks),
      modeled(kRanks);
  run_hybrid_world(kRanks, [&](Comm& comm) {
    cycle_suite(comm, model, /*scalar=*/false, /*threads=*/1,
                hybrid[static_cast<std::size_t>(comm.rank())]);
  });
  run_hybrid_world(kRanks, [&](Comm& comm) {
    cycle_suite(comm, model, /*scalar=*/false, /*threads=*/2,
                threaded[static_cast<std::size_t>(comm.rank())]);
  });
  World::Config cfg;
  cfg.num_ranks = kRanks;
  cfg.machine = net::ideal_machine();
  World world(cfg);
  world.run([&](Comm& comm) {
    cycle_suite(comm, model, /*scalar=*/false, /*threads=*/4,
                modeled[static_cast<std::size_t>(comm.rank())]);
  });
  expect_bit_identical(hybrid, threaded);
  expect_bit_identical(hybrid, modeled);
}

TEST(TransportHybrid, FastMathTierDeterministicOnHybrid) {
  constexpr int kRanks = 3;
  data::LabeledDataset ld = data::mixed_mixture(
      {{0.5, {0.0, 1.0}, {1.0, 0.5}, {{0.8, 0.2}, {0.1, 0.6, 0.3}}},
       {0.5, {3.0, -1.0}, {0.7, 1.2}, {{0.3, 0.7}, {0.5, 0.2, 0.3}}}},
      600, 17);
  data::inject_missing(ld.dataset, 0.05, 9);
  const ac::Model model = ac::Model::default_model(ld.dataset);

  std::vector<std::vector<double>> hybrid(kRanks), modeled(kRanks);
  run_hybrid_world(kRanks, [&](Comm& comm) {
    fast_math_cycle_suite(comm, model, /*threads=*/2,
                          hybrid[static_cast<std::size_t>(comm.rank())]);
  });
  World::Config cfg;
  cfg.num_ranks = kRanks;
  cfg.machine = net::ideal_machine();
  World world(cfg);
  world.run([&](Comm& comm) {
    fast_math_cycle_suite(comm, model, /*threads=*/4,
                          modeled[static_cast<std::size_t>(comm.rank())]);
  });
  expect_bit_identical(hybrid, modeled);
}

TEST(TransportHybrid, GroupSearchMergesBitIdenticalToInProcess) {
  // Try-parallel search on the hybrid transport: sub-world split, advisory
  // summary exchange, and final leaderboard merge all over shm rings.
  constexpr int kRanks = 4;
  const data::LabeledDataset ld = data::paper_dataset(500, 23);
  const ac::Model model = ac::Model::default_model(ld.dataset);
  ac::SearchConfig config;
  config.start_j_list = {2, 4, 6};
  config.max_tries = 6;
  config.em.max_cycles = 30;
  config.seed = 2024;
  core::ParallelConfig parallel;
  parallel.try_groups = 2;

  const std::string address = unique_address();
  const HybridSegments segs(kRanks);
  std::vector<core::ParallelOutcome> outcomes(kRanks);
  std::vector<std::exception_ptr> errors(kRanks);
  std::vector<std::thread> ranks;
  for (int r = 0; r < kRanks; ++r) {
    ranks.emplace_back([&, r] {
      try {
        World world(hybrid_config(address, r, kRanks, segs));
        outcomes[static_cast<std::size_t>(r)] =
            core::run_parallel_search(world, model, config, parallel);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (std::thread& t : ranks) t.join();
  for (const std::exception_ptr& e : errors)
    if (e) std::rethrow_exception(e);

  World::Config cfg;
  cfg.num_ranks = kRanks;
  cfg.machine = net::ideal_machine();
  World reference(cfg);
  const core::ParallelOutcome expected =
      core::run_parallel_search(reference, model, config, parallel);

  const auto flatten = [](const ac::SearchResult& s) {
    std::vector<double> v;
    v.push_back(static_cast<double>(s.tries));
    v.push_back(static_cast<double>(s.total_cycles));
    v.push_back(static_cast<double>(s.best.size()));
    for (const ac::TryResult& e : s.best) {
      v.push_back(static_cast<double>(e.try_index));
      v.push_back(static_cast<double>(e.j_requested));
      v.push_back(e.classification.cs_score);
      v.push_back(e.classification.log_likelihood);
      const auto w = e.classification.weights();
      v.insert(v.end(), w.begin(), w.end());
      const auto p = e.classification.all_params();
      v.insert(v.end(), p.begin(), p.end());
    }
    return v;
  };
  std::vector<std::vector<double>> hybrid_boards, reference_boards;
  for (const core::ParallelOutcome& o : outcomes)
    hybrid_boards.push_back(flatten(o.search));
  for (int r = 0; r < kRanks; ++r)
    reference_boards.push_back(flatten(expected.search));
  ASSERT_FALSE(expected.search.best.empty());
  expect_bit_identical(hybrid_boards, reference_boards);
}

TEST(TransportHybrid, WorldIsReusableAcrossRuns) {
  // The hybrid mesh (sockets + rings) forms once and serves several run()
  // calls; the segment fds are consumed by the first formation only.
  const std::string address = unique_address();
  constexpr int kRanks = 2;
  const HybridSegments segs(kRanks);
  std::vector<std::thread> ranks;
  std::atomic<int> failures{0};
  for (int r = 0; r < kRanks; ++r) {
    ranks.emplace_back([&, r] {
      try {
        World world(hybrid_config(address, r, kRanks, segs));
        for (int round = 0; round < 3; ++round) {
          world.run([round, &failures](Comm& comm) {
            const double sum = comm.allreduce_scalar(
                static_cast<double>(comm.rank() + round));
            if (sum != static_cast<double>(1 + 2 * round))
              failures.fetch_add(1);
          });
        }
      } catch (...) {
        failures.fetch_add(100);
      }
    });
  }
  for (std::thread& t : ranks) t.join();
  EXPECT_EQ(failures.load(), 0);
}

// ---------------------------------------------------------------------------
// ShmRing unit tests: the SPSC channel by itself, two ends of one segment
// in one process (dup'd fds, exactly how the world-level fixture works).

using transport::Fd;
using transport::ShmChannel;
using transport::ShmChannelOptions;

struct ChannelPair {
  std::unique_ptr<ShmChannel> lower, higher;
  explicit ChannelPair(std::size_t ring_bytes,
                       ShmChannelOptions opts = ShmChannelOptions{}) {
    const Fd seg = ShmChannel::create_segment(ring_bytes);
    lower = std::make_unique<ShmChannel>(Fd(::dup(seg.get())), /*lower=*/true,
                                         opts, "lower end");
    higher = std::make_unique<ShmChannel>(Fd(::dup(seg.get())),
                                          /*lower=*/false, opts, "higher end");
  }
};

Message make_msg(int source, int tag, std::size_t nbytes) {
  Message m;
  m.context = 1;
  m.source = source;
  m.tag = tag;
  m.payload.resize(nbytes);
  for (std::size_t i = 0; i < nbytes; ++i)
    m.payload[i] = static_cast<std::byte>((i * 31 + static_cast<std::size_t>(tag)) & 0xff);
  return m;
}

void expect_msg_equal(const Message& got, const Message& want) {
  EXPECT_EQ(got.source, want.source);
  EXPECT_EQ(got.tag, want.tag);
  ASSERT_EQ(got.payload.size(), want.payload.size());
  if (!want.payload.empty()) {
    EXPECT_EQ(std::memcmp(got.payload.data(), want.payload.data(),
                          want.payload.size()),
              0);
  }
}

TEST(ShmRing, WraparoundPreservesFrameStream) {
  // Hundreds of varied-size frames through a 4 KiB ring: the stream wraps
  // the capacity many times over and every frame must come out intact and
  // in order.
  ChannelPair pair(4096);
  constexpr int kFrames = 400;
  std::thread producer([&] {
    for (int i = 0; i < kFrames; ++i)
      pair.lower->send_message(
          make_msg(0, i, static_cast<std::size_t>((i * 137) % 600)));
    pair.lower->send_shutdown();
  });
  Message got;
  for (int i = 0; i < kFrames; ++i) {
    ASSERT_TRUE(pair.higher->recv_message(got)) << "frame " << i;
    expect_msg_equal(got,
                     make_msg(0, i, static_cast<std::size_t>((i * 137) % 600)));
  }
  EXPECT_FALSE(pair.higher->recv_message(got));  // clean shutdown
  producer.join();
  const auto sent = pair.lower->stats();
  EXPECT_EQ(sent.frames_sent, static_cast<std::uint64_t>(kFrames));
}

TEST(ShmRing, ChainedLargeFrameStreamsThroughSmallRing) {
  // One frame an order of magnitude larger than the ring: the payload
  // streams through in capacity-sized chunks (the chained-chunk protocol).
  ChannelPair pair(4096);
  const Message big = make_msg(1, 7, 64 * 1024);
  std::thread producer([&] { pair.lower->send_message(big); });
  Message got;
  ASSERT_TRUE(pair.higher->recv_message(got));
  producer.join();
  expect_msg_equal(got, big);
}

TEST(ShmRing, FullRingBackpressureBlocksProducer) {
  // A sleeping consumer forces the producer to fill the ring and park; once
  // the consumer drains, the stream completes and the producer's stats
  // show at least one spin-gave-up wait.
  ShmChannelOptions opts;
  opts.spin_iters = 4;  // park fast so the test measures the futex path
  ChannelPair pair(4096, opts);
  const Message big = make_msg(0, 3, 32 * 1024);
  std::thread producer([&] {
    pair.lower->send_message(big);
    pair.lower->send_shutdown();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  Message got;
  ASSERT_TRUE(pair.higher->recv_message(got));
  EXPECT_FALSE(pair.higher->recv_message(got));
  producer.join();
  expect_msg_equal(got, big);
  EXPECT_GE(pair.lower->stats().waits, 1u);
}

TEST(ShmRing, PeerDeathWhileBlockedRecvThrows) {
  // A receiver parked on an empty ring must be woken and thrown out when
  // the peer's death is reported via fail() — not sleep forever.
  ChannelPair pair(4096);
  std::exception_ptr thrown;
  std::thread consumer([&] {
    try {
      Message got;
      pair.higher->recv_message(got);
    } catch (...) {
      thrown = std::current_exception();
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  pair.lower->fail("rank 0 died (test)");
  consumer.join();
  ASSERT_TRUE(thrown != nullptr);
  try {
    std::rethrow_exception(thrown);
  } catch (const TransportError& e) {
    // The reason string lives in the failing end's process; across the
    // segment only the failed flag travels, so the blocked end reports a
    // generic channel failure.  (In HybridTransport the local channel is
    // fail()'d with the real socket-EOF diagnosis, which DOES carry it.)
    EXPECT_NE(std::string(e.what()).find("shm channel failed"),
              std::string::npos)
        << e.what();
  }
  EXPECT_TRUE(pair.higher->failed());
}

TEST(ShmRing, PeerDeathWhileBlockedSendThrows) {
  // A producer blocked on a full ring (nobody consuming) must be woken and
  // thrown out when the peer dies.
  ShmChannelOptions opts;
  opts.spin_iters = 4;
  ChannelPair pair(4096, opts);
  std::exception_ptr thrown;
  std::thread producer([&] {
    try {
      pair.lower->send_message(make_msg(0, 1, 64 * 1024));
    } catch (...) {
      thrown = std::current_exception();
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  pair.higher->fail("rank 1 died (test)");
  producer.join();
  ASSERT_TRUE(thrown != nullptr);
  EXPECT_THROW(std::rethrow_exception(thrown), TransportError);
  // Every later operation on either end fails fast, too.
  EXPECT_THROW(pair.lower->send_message(make_msg(0, 2, 8)), TransportError);
}

TEST(ShmRing, TruncatedSegmentRejected) {
  Fd seg = ShmChannel::create_segment(4096);
  ASSERT_EQ(::ftruncate(seg.get(), 2560), 0);
  EXPECT_THROW(ShmChannel(std::move(seg), true, ShmChannelOptions{}, "trunc"),
               TransportError);
}

TEST(ShmRing, GarbageSegmentRejected) {
  // A right-sized file that was never initialized as a segment must be a
  // typed error, not a hang on garbage control words.
  Fd seg = ShmChannel::create_segment(4096);
  // Zero the header: magic/version/ring_bytes all invalid.
  const std::vector<char> zeros(64, 0);
  ASSERT_EQ(::pwrite(seg.get(), zeros.data(), zeros.size(), 0),
            static_cast<ssize_t>(zeros.size()));
  EXPECT_THROW(ShmChannel(std::move(seg), true, ShmChannelOptions{}, "junk"),
               TransportError);
}

}  // namespace
}  // namespace pac::mp
