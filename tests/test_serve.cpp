// pac_serve subsystem tests: checkpoint round-trips through the serving
// kernel for every term family, corrupt-checkpoint rejection with named
// line/field, predictor bit-identity against the offline prediction
// helpers, the wire protocol codec, and the live server end to end —
// concurrent clients, hot reload under load, backpressure, and malformed
// requests.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

#include "autoclass/checkpoint.hpp"
#include "autoclass/report.hpp"
#include "autoclass/search.hpp"
#include "data/synth.hpp"
#include "mp/transport/frame.hpp"
#include "serve/client.hpp"
#include "serve/predictor.hpp"
#include "serve/server.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"

namespace pac::serve {
namespace {

using data::Attribute;
using data::Dataset;
using data::Schema;
namespace mt = mp::transport;

// ---- fixtures: a model exercising all five term families ----

Schema five_family_schema() {
  return Schema({Attribute::real("x", 0.01), Attribute::discrete("d", 3),
                 Attribute::real("y", 0.01), Attribute::real("z", 0.01),
                 Attribute::real("w", 0.01), Attribute::real("junk", 0.01)});
}

/// Two latent clusters over: x (single_normal), d (single_multinomial),
/// y+z (multi_normal block, correlated), w > 0 (single_lognormal), and a
/// junk attribute the model ignores.
Dataset five_family_dataset(std::size_t n, std::uint64_t seed) {
  Dataset ds(five_family_schema(), n);
  Xoshiro256ss rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const bool c = i % 2 == 0;
    ds.set_real(i, 0, (c ? 0.0 : 6.0) + normal01(rng));
    const double u =
        static_cast<double>(rng() >> 11) * 0x1.0p-53;  // uniform [0,1)
    const std::int32_t d =
        c ? (u < 0.8 ? 0 : 1) : (u < 0.8 ? 2 : 1);
    ds.set_discrete(i, 1, d);
    const double g1 = normal01(rng);
    const double g2 = normal01(rng);
    ds.set_real(i, 2, (c ? -3.0 : 3.0) + g1);
    ds.set_real(i, 3, (c ? -3.0 : 3.0) + 0.8 * g1 + 0.6 * g2);
    ds.set_real(i, 4, std::exp((c ? 0.0 : 2.0) + 0.3 * normal01(rng)));
    ds.set_real(i, 5, normal01(rng));
  }
  return ds;
}

ac::Model five_family_model(const Dataset& ds) {
  std::vector<ac::TermSpec> specs(5);
  specs[0] = {ac::TermKind::kSingleNormal, {0}};
  specs[1] = {ac::TermKind::kSingleMultinomial, {1}};
  specs[2] = {ac::TermKind::kMultiNormal, {2, 3}};
  specs[3] = {ac::TermKind::kSingleLognormal, {4}};
  specs[4] = {ac::TermKind::kIgnore, {5}};
  return ac::Model(ds, specs);
}

ac::Classification fit(const ac::Model& model, int j = 2,
                       std::uint64_t seed = 1234) {
  ac::SearchConfig config;
  config.start_j_list = {j};
  config.max_tries = 1;
  config.em.max_cycles = 25;
  config.seed = seed;
  return ac::sequential_search(model, config).top();
}

std::vector<double> log_joint_matrix(const ac::Classification& c,
                                     const Dataset& batch) {
  const PredictOutput out = predict_batch(c, batch, true);
  return out.membership;  // fully determined by the log-joint rows
}

// ---- checkpoint round trips (satellite: all five term families) ----

TEST(CheckpointRoundTrip, AllFiveFamiliesBitIdenticalThroughFillLogJoint) {
  const Dataset train = five_family_dataset(400, 21);
  const ac::Model model = five_family_model(train);
  const ac::Classification c = fit(model);

  std::stringstream ss;
  ac::save_classification(ss, c);
  const ac::Classification loaded = ac::load_classification(ss, model);

  // Parameters round-trip bit for bit (17-significant-digit ASCII).
  ASSERT_EQ(loaded.num_classes(), c.num_classes());
  ASSERT_EQ(loaded.all_params().size(), c.all_params().size());
  EXPECT_EQ(0, std::memcmp(loaded.all_params().data(), c.all_params().data(),
                           c.all_params().size() * sizeof(double)));
  EXPECT_EQ(0, std::memcmp(loaded.log_pis().data(), c.log_pis().data(),
                           c.log_pis().size() * sizeof(double)));
  EXPECT_EQ(0, std::memcmp(loaded.weights().data(), c.weights().data(),
                           c.weights().size() * sizeof(double)));

  // ... and so do predictions through the serving kernel path.
  const Dataset probe = five_family_dataset(128, 22);
  const auto before = log_joint_matrix(c, probe);
  const auto after = log_joint_matrix(loaded, probe);
  ASSERT_EQ(before.size(), after.size());
  EXPECT_EQ(0, std::memcmp(before.data(), after.data(),
                           before.size() * sizeof(double)));

  const auto labels_before = predict_batch(c, probe, false).labels;
  const auto labels_after = predict_batch(loaded, probe, false).labels;
  EXPECT_EQ(labels_before, labels_after);
}

TEST(CheckpointRoundTrip, SearchResultPreservesBestPredictions) {
  const Dataset train = five_family_dataset(300, 23);
  const ac::Model model = five_family_model(train);
  ac::SearchConfig config;
  config.start_j_list = {2, 3};
  config.max_tries = 2;
  config.em.max_cycles = 15;
  const ac::SearchResult result = ac::sequential_search(model, config);

  std::stringstream ss;
  ac::save_search_result(ss, result);
  const ac::SearchResult loaded = ac::load_search_result(ss, model);
  ASSERT_EQ(loaded.best.size(), result.best.size());

  const Dataset probe = five_family_dataset(64, 24);
  const auto before = log_joint_matrix(result.top(), probe);
  const auto after = log_joint_matrix(loaded.top(), probe);
  EXPECT_EQ(0, std::memcmp(before.data(), after.data(),
                           before.size() * sizeof(double)));
}

// ---- corrupt / truncated checkpoint rejection ----

class CheckpointReject : public ::testing::Test {
 protected:
  void SetUp() override {
    train_ = five_family_dataset(120, 25);
    model_.emplace(five_family_model(train_));
    std::stringstream ss;
    ac::save_classification(ss, fit(*model_));
    text_ = ss.str();
  }

  ac::CheckpointError load_expecting_error(const std::string& text) {
    std::istringstream in(text);
    try {
      ac::load_classification(in, *model_);
    } catch (const ac::CheckpointError& e) {
      return e;
    }
    ADD_FAILURE() << "load_classification accepted: " << text.substr(0, 80);
    return ac::CheckpointError(0, "", "");
  }

  Dataset train_;
  std::optional<ac::Model> model_;
  std::string text_;
};

TEST_F(CheckpointReject, EveryTruncationThrowsCheckpointError) {
  for (std::size_t len = 0; len + 1 < text_.size(); len += 7) {
    std::istringstream in(text_.substr(0, len));
    EXPECT_THROW(ac::load_classification(in, *model_), ac::CheckpointError)
        << "prefix length " << len;
  }
}

TEST_F(CheckpointReject, BadMagicNamesLineOne) {
  const auto e = load_expecting_error("pac-nonsense v1 classes 2");
  EXPECT_EQ(e.line(), 1u);
  EXPECT_EQ(e.field(), "pac-classification");
  EXPECT_NE(std::string(e.what()).find("line 1"), std::string::npos);
}

TEST_F(CheckpointReject, NegativeClassCountNamesField) {
  std::string t = text_;
  const auto pos = t.find("classes ");
  t.replace(pos, t.find(' ', pos + 8) - pos, "classes -3");
  const auto e = load_expecting_error(t);
  EXPECT_EQ(e.field(), "class count");
}

TEST_F(CheckpointReject, OversizedClassCountRejectedBeforeAllocation) {
  const auto e = load_expecting_error(
      "pac-classification v1 classes 18446744073709551615 params_per_class "
      "4");
  EXPECT_EQ(e.field(), "class count");
}

TEST_F(CheckpointReject, ClassCountAboveCapRejected) {
  const auto e = load_expecting_error(
      "pac-classification v1 classes 1000000 params_per_class 4");
  EXPECT_EQ(e.field(), "class count");
  EXPECT_NE(std::string(e.what()).find("limit"), std::string::npos);
}

TEST_F(CheckpointReject, StructureMismatchNamesParamsPerClass) {
  std::string t = text_;
  const auto pos = t.find("params_per_class ");
  t.replace(pos, t.find('\n', pos) - pos, "params_per_class 9999");
  const auto e = load_expecting_error(t);
  EXPECT_EQ(e.field(), "params_per_class");
  EXPECT_NE(std::string(e.what()).find("different model structure"),
            std::string::npos);
}

TEST_F(CheckpointReject, MalformedScoreNamesLineAndField) {
  std::string t = text_;
  t.replace(t.find("scores "), 7, "scores abc ");
  const auto e = load_expecting_error(t);
  EXPECT_EQ(e.field(), "log_likelihood");
  EXPECT_EQ(e.line(), 3u);  // line 1 magic, 2 classes, 3 scores
}

TEST_F(CheckpointReject, MalformedWeightNamesField) {
  std::string t = text_;
  t.replace(t.find("weights "), 8, "weights not-a-number ");
  const auto e = load_expecting_error(t);
  EXPECT_EQ(e.field(), "weights");
}

TEST_F(CheckpointReject, MissingEndTokenRejected) {
  std::string t = text_;
  t.replace(t.rfind("end"), 3, "");
  EXPECT_EQ(load_expecting_error(t).field(), "end");
}

// ---- predictor ----

TEST(Predictor, MatchesOfflinePredictionHelpers) {
  const Dataset train = five_family_dataset(400, 26);
  const ac::Model model = five_family_model(train);
  const ac::Classification c = fit(model);
  const Dataset probe = five_family_dataset(150, 27);

  const PredictOutput out = predict_batch(c, probe, true);
  const auto expected_labels = ac::predict_labels(c, probe);
  ASSERT_EQ(out.labels.size(), expected_labels.size());
  EXPECT_EQ(out.labels, expected_labels);
  const std::size_t j = c.num_classes();
  for (std::size_t i = 0; i < probe.num_items(); ++i) {
    const auto m = ac::predict_membership(c, probe, i);
    for (std::size_t k = 0; k < j; ++k)
      EXPECT_EQ(out.membership[i * j + k], m[k])
          << "row " << i << " class " << k;
  }
}

TEST(Predictor, TrainingRowsMatchAssignLabels) {
  const Dataset train = five_family_dataset(300, 28);
  const ac::Model model = five_family_model(train);
  const ac::Classification c = fit(model);
  // Serving the training rows themselves must reproduce assign_labels
  // (both route through fill_log_joint).
  const PredictOutput out = predict_batch(c, train, false);
  EXPECT_EQ(out.labels, ac::assign_labels(c));
}

TEST(Predictor, AdmissionRulesFromTermFamilies) {
  const Dataset train = five_family_dataset(100, 29);
  const ac::Model model = five_family_model(train);
  const AdmissionRules rules = derive_admission_rules(model);
  ASSERT_EQ(rules.requires_positive.size(), 6u);
  EXPECT_FALSE(rules.requires_positive[0]);
  EXPECT_TRUE(rules.requires_positive[4]);  // lognormal attribute
  EXPECT_TRUE(rules.forbids_missing[2]);    // multi_normal block
  EXPECT_TRUE(rules.forbids_missing[3]);
  EXPECT_FALSE(rules.forbids_missing[0]);

  Dataset bad = five_family_dataset(3, 30);
  bad.set_real(1, 4, -2.0);
  try {
    validate_batch(rules, bad);
    FAIL() << "negative lognormal value admitted";
  } catch (const ProtocolError& e) {
    EXPECT_NE(std::string(e.what()).find("row 1"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("'w'"), std::string::npos);
  }

  Dataset missing = five_family_dataset(3, 31);
  missing.set_missing(2, 3);
  try {
    validate_batch(rules, missing);
    FAIL() << "missing multi_normal value admitted";
  } catch (const ProtocolError& e) {
    EXPECT_NE(std::string(e.what()).find("'z'"), std::string::npos);
  }
}

// ---- payload codec ----

TEST(Protocol, ReaderRejectsTruncationAndTrailingBytes) {
  PayloadWriter w;
  w.u32(7);
  w.f64(1.5);
  PayloadReader r(w.bytes());
  EXPECT_EQ(r.u32(), 7u);
  EXPECT_EQ(r.f64(), 1.5);
  EXPECT_TRUE(r.exhausted());
  EXPECT_THROW(r.u8(), ProtocolError);

  PayloadReader trailing(w.bytes());
  trailing.u32();
  EXPECT_THROW(trailing.expect_exhausted(), ProtocolError);
}

TEST(Protocol, StringLengthBoundedByBody) {
  PayloadWriter w;
  w.u32(0xFFFFFF);  // claims a 16 MiB string in a 4-byte body
  PayloadReader r(w.bytes());
  EXPECT_THROW(r.str(), ProtocolError);
}

TEST(Protocol, RowsRoundTripWithMissingValues) {
  Dataset rows = five_family_dataset(9, 32);
  rows.set_missing(4, 0);
  rows.set_missing(5, 1);
  PayloadWriter w;
  encode_rows(w, rows, 0, rows.num_items());
  PayloadReader r(w.bytes());
  const Dataset decoded = decode_rows(r, rows.schema(), rows.num_items());
  r.expect_exhausted();
  for (std::size_t i = 0; i < rows.num_items(); ++i)
    for (std::size_t a = 0; a < rows.num_attributes(); ++a) {
      ASSERT_EQ(decoded.is_missing(i, a), rows.is_missing(i, a));
      if (rows.is_missing(i, a)) continue;
      if (rows.schema().at(a).kind == data::AttributeKind::kReal)
        EXPECT_EQ(decoded.real_value(i, a), rows.real_value(i, a));
      else
        EXPECT_EQ(decoded.discrete_value(i, a), rows.discrete_value(i, a));
    }
}

TEST(Protocol, OutOfRangeDiscreteRejectedWithRowAndAttribute) {
  Dataset rows(five_family_schema(), 2);
  PayloadWriter w;
  // Row 0 valid, row 1 carries discrete value 7 for a range-3 attribute.
  for (std::size_t i = 0; i < 2; ++i) {
    w.f64(0.0);
    w.i32(i == 1 ? 7 : 0);
    w.f64(0.0);
    w.f64(0.0);
    w.f64(1.0);
    w.f64(0.0);
  }
  PayloadReader r(w.bytes());
  try {
    decode_rows(r, rows.schema(), 2);
    FAIL() << "out-of-range discrete admitted";
  } catch (const ProtocolError& e) {
    EXPECT_NE(std::string(e.what()).find("row 1"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("'d'"), std::string::npos);
  }
}

TEST(Protocol, RowCountCapEnforced) {
  PayloadWriter w;
  PayloadReader r(w.bytes());
  EXPECT_THROW(decode_rows(r, five_family_schema(), kMaxRowsPerRequest + 1),
               ProtocolError);
  PayloadReader r2(w.bytes());
  EXPECT_THROW(decode_rows(r2, five_family_schema(), 0), ProtocolError);
}

// ---- live server ----

struct ServeFixture {
  ServeFixture(int j = 2, ServerOptions opts = {})
      : train(five_family_dataset(500, 40)),
        model(five_family_model(train)),
        classification(fit(model, j)),
        server(model, ac::Classification(classification), opts) {
    server.start();
  }

  Dataset train;
  ac::Model model;
  ac::Classification classification;
  Server server;
};

TEST(Server, InfoReportsModelAndGeneration) {
  ServeFixture f;
  Client client(f.server.bound_address());
  const InfoResponse info = client.info();
  EXPECT_EQ(info.generation, 1u);
  EXPECT_EQ(info.num_classes, f.classification.num_classes());
  EXPECT_EQ(info.log_likelihood, f.classification.log_likelihood);
  ASSERT_EQ(info.attributes.size(), 6u);
  EXPECT_EQ(info.attributes[1].name, "d");
  EXPECT_TRUE(info.attributes[1].discrete);
  EXPECT_EQ(info.attributes[1].num_values, 3);
  EXPECT_FALSE(info.attributes[0].discrete);
}

TEST(Server, PredictBitIdenticalToOfflineKernel) {
  ServeFixture f;
  const Dataset probe = five_family_dataset(200, 41);
  const PredictOutput offline = predict_batch(f.classification, probe, true);

  Client client(f.server.bound_address());
  const PredictResponse resp = client.predict(probe, true);
  EXPECT_EQ(resp.generation, 1u);
  EXPECT_EQ(resp.labels, offline.labels);
  ASSERT_EQ(resp.membership.size(), offline.membership.size());
  EXPECT_EQ(0, std::memcmp(resp.membership.data(), offline.membership.data(),
                           offline.membership.size() * sizeof(double)));
}

TEST(Server, EightConcurrentClientsBitIdentical) {
  ServeFixture f;
  const Dataset probe = five_family_dataset(96, 42);
  const PredictOutput offline = predict_batch(f.classification, probe, true);

  constexpr int kClients = 8;
  constexpr int kRequestsPerClient = 6;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&] {
      try {
        Client client(f.server.bound_address());
        for (int k = 0; k < kRequestsPerClient; ++k) {
          const PredictResponse resp = client.predict(probe, true);
          if (resp.labels != offline.labels ||
              std::memcmp(resp.membership.data(), offline.membership.data(),
                          offline.membership.size() * sizeof(double)) != 0)
            mismatches.fetch_add(1);
        }
      } catch (const std::exception&) {
        failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(failures.load(), 0);
}

TEST(Server, MicroBatchingPreservesPerRequestResults) {
  // A tiny delay window plus many single-row requests forces co-batching;
  // each response must still carry exactly its own rows' results.
  ServerOptions opts;
  opts.max_delay_ms = 5.0;
  opts.max_batch_rows = 64;
  ServeFixture f(2, opts);
  const Dataset probe = five_family_dataset(32, 43);
  const PredictOutput offline = predict_batch(f.classification, probe, false);

  constexpr int kClients = 4;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      Client client(f.server.bound_address());
      for (std::size_t i = static_cast<std::size_t>(t);
           i < probe.num_items(); i += kClients) {
        const Dataset one = probe.slice(i, i + 1);
        const PredictResponse resp = client.predict(one, false);
        if (resp.labels.size() != 1 || resp.labels[0] != offline.labels[i])
          mismatches.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
  f.server.stop();
  // Co-batching happened at least once (not every request alone), and the
  // batch accounting is consistent.
  const auto& m = f.server.metrics();
  EXPECT_EQ(m.counter_value("serve.rows_predicted"), probe.num_items());
  EXPECT_LE(m.counter_value("serve.batches"),
            m.counter_value("serve.requests_predict"));
}

TEST(Server, HotReloadUnderLoadKeepsResponsesConsistent) {
  const std::string ckpt =
      "/tmp/pac_serve_test_" + std::to_string(::getpid()) + ".ckpt";
  const Dataset train = five_family_dataset(500, 44);
  const ac::Model model = five_family_model(train);
  const ac::Classification gen1 = fit(model, 2, 1234);
  const ac::Classification gen2 = fit(model, 3, 99);
  {
    std::ofstream out(ckpt);
    ac::save_classification(out, gen1);
  }
  ServerOptions opts;
  opts.watch_path = ckpt;
  opts.watch_interval_s = 10.0;  // reloads via explicit kReload only
  Server server(model, ac::Classification(gen1), opts);
  server.start();

  const Dataset probe = five_family_dataset(64, 45);
  const PredictOutput offline1 = predict_batch(gen1, probe, true);
  const PredictOutput offline2 = predict_batch(gen2, probe, true);

  std::atomic<bool> stop{false};
  std::atomic<int> mismatches{0};
  std::atomic<int> gen2_seen{0};
  constexpr int kClients = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&] {
      Client client(server.bound_address());
      while (!stop.load()) {
        const PredictResponse resp = client.predict(probe, true);
        const PredictOutput* expect = nullptr;
        if (resp.generation == 1)
          expect = &offline1;
        else if (resp.generation == 2)
          expect = &offline2;
        if (expect == nullptr || resp.labels != expect->labels ||
            std::memcmp(resp.membership.data(), expect->membership.data(),
                        expect->membership.size() * sizeof(double)) != 0)
          mismatches.fetch_add(1);
        if (resp.generation == 2) gen2_seen.fetch_add(1);
      }
    });
  }

  // Let a few generation-1 responses land, then swap the checkpoint and
  // trigger the reload while the clients keep streaming.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  {
    std::ofstream out(ckpt);
    ac::save_classification(out, gen2);
  }
  Client control(server.bound_address());
  const ReloadResponse reload = control.reload();
  EXPECT_TRUE(reload.reloaded) << reload.message;
  EXPECT_EQ(reload.generation, 2u);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  stop.store(true);
  for (auto& th : threads) th.join();

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_GT(gen2_seen.load(), 0);
  EXPECT_EQ(server.generation(), 2u);
  ::unlink(ckpt.c_str());
}

TEST(Server, CorruptReloadKeepsServingOldGeneration) {
  const std::string ckpt =
      "/tmp/pac_serve_test_bad_" + std::to_string(::getpid()) + ".ckpt";
  const Dataset train = five_family_dataset(300, 46);
  const ac::Model model = five_family_model(train);
  const ac::Classification gen1 = fit(model);
  {
    std::ofstream out(ckpt);
    out << "pac-classification v1 classes 2 params_per_class GARBAGE\n";
  }
  ServerOptions opts;
  opts.watch_path = ckpt;
  opts.watch_interval_s = 10.0;
  Server server(model, ac::Classification(gen1), opts);
  server.start();

  Client client(server.bound_address());
  const ReloadResponse reload = client.reload();
  EXPECT_FALSE(reload.reloaded);
  EXPECT_EQ(reload.generation, 1u);
  EXPECT_NE(reload.message.find("checkpoint parse error"), std::string::npos);
  EXPECT_EQ(server.reload_failures(), 1u);

  // The old generation still serves, bit-identically.
  const Dataset probe = five_family_dataset(20, 47);
  const PredictOutput offline = predict_batch(gen1, probe, false);
  EXPECT_EQ(client.predict(probe, false).labels, offline.labels);
  ::unlink(ckpt.c_str());
}

TEST(Server, BackpressureRejectsWithBusyError) {
  ServerOptions opts;
  opts.max_queue_rows = 0;  // reject every predict deterministically
  ServeFixture f(2, opts);
  Client client(f.server.bound_address());
  const Dataset probe = five_family_dataset(4, 48);
  try {
    client.predict(probe, false);
    FAIL() << "expected a busy rejection";
  } catch (const ServeError& e) {
    EXPECT_NE(std::string(e.what()).find("server busy"), std::string::npos);
  }
  // Control-plane requests still go through.
  EXPECT_EQ(client.info().generation, 1u);
  f.server.stop();
  EXPECT_EQ(f.server.busy_rejections(), 1u);
}

TEST(Server, AdmissionErrorsFailOneRequestNotTheConnection) {
  ServeFixture f;
  Client client(f.server.bound_address());
  Dataset bad = five_family_dataset(3, 49);
  bad.set_real(0, 4, -1.0);  // violates the lognormal precondition
  try {
    client.predict(bad, false);
    FAIL() << "expected an admission error";
  } catch (const ServeError& e) {
    EXPECT_NE(std::string(e.what()).find("'w'"), std::string::npos);
  }
  // Same connection keeps working.
  const Dataset good = five_family_dataset(3, 50);
  EXPECT_EQ(client.predict(good, false).labels.size(), 3u);
}

TEST(Server, StatsExposeLatencyHistogramAndGeneration) {
  ServeFixture f;
  Client client(f.server.bound_address());
  const Dataset probe = five_family_dataset(10, 51);
  client.predict(probe, false);
  const std::string stats = client.stats_text();
  EXPECT_NE(stats.find("serve.request_seconds"), std::string::npos);
  EXPECT_NE(stats.find("serve.batch_rows"), std::string::npos);
  EXPECT_NE(stats.find("generation 1"), std::string::npos);
}

TEST(Server, MalformedBodiesGetTypedErrorsGarbageFramesDropConnection) {
  ServeFixture f;
  const mt::Endpoint ep = mt::parse_endpoint(f.server.bound_address());
  const mt::FrameLimits limits{kMaxRequestBytes, false};

  // Unknown tag: error response, connection stays up.
  {
    const mt::Fd fd = mt::connect_to(ep, 5.0);
    mt::FrameHeader h;
    h.context = kProtocolVersion;
    h.source = 7;
    h.tag = 99;
    const std::byte body[1]{};
    h.nbytes = 1;
    mt::write_frame(fd, h, body, 1, limits, "test send");
    mt::FrameHeader rh;
    std::vector<std::byte> payload;
    ASSERT_TRUE(mt::read_frame(fd, limits, rh, payload, "test recv"));
    EXPECT_EQ(rh.tag, kErrorTag);
    EXPECT_EQ(rh.source, 7);

    // Wrong protocol version: still an error response, not a hang.
    h.context = kProtocolVersion + 5;
    h.source = 8;
    h.tag = static_cast<std::int32_t>(RequestType::kInfo);
    mt::write_frame(fd, h, body, 1, limits, "test send");
    ASSERT_TRUE(mt::read_frame(fd, limits, rh, payload, "test recv"));
    EXPECT_EQ(rh.tag, kErrorTag);
    EXPECT_EQ(rh.source, 8);

    // Truncated predict body (claims 5 rows, carries none).
    PayloadWriter w;
    w.u8(0);
    w.u32(5);
    h.context = kProtocolVersion;
    h.source = 9;
    h.tag = static_cast<std::int32_t>(RequestType::kPredict);
    h.nbytes = w.bytes().size();
    mt::write_frame(fd, h, w.bytes().data(), w.bytes().size(), limits,
                    "test send");
    ASSERT_TRUE(mt::read_frame(fd, limits, rh, payload, "test recv"));
    EXPECT_EQ(rh.tag, kErrorTag);
    EXPECT_EQ(rh.source, 9);
  }

  // A garbage stream (bad magic) gets the connection dropped, and the
  // server survives to serve the next client.
  {
    const mt::Fd fd = mt::connect_to(ep, 5.0);
    std::uint64_t junk[16];
    for (std::size_t i = 0; i < 16; ++i)
      junk[i] = 0xDEADBEEFCAFEF00DULL + i;
    mt::write_full(fd, junk, sizeof(junk), "test junk");
    mt::FrameHeader rh;
    std::vector<std::byte> payload;
    bool closed = false;
    try {
      closed = !mt::read_frame(fd, limits, rh, payload, "test recv");
    } catch (const mp::TransportError&) {
      closed = true;  // reset racing the close is equally fine
    }
    EXPECT_TRUE(closed);
  }
  Client client(f.server.bound_address());
  EXPECT_EQ(client.info().generation, 1u);
}

// ---- histogram quantiles (serve latency reporting) ----

TEST(HistogramQuantile, EmptyHistogramHasNoQuantile) {
  // An empty histogram must not report a (fake) 0-second latency: serve
  // stats and bench_diff treat NaN as "not measured".
  metrics::Histogram h;
  EXPECT_TRUE(std::isnan(h.quantile(0.5)));
  EXPECT_TRUE(std::isnan(h.quantile(0.0)));
  EXPECT_TRUE(std::isnan(h.quantile(1.0)));
}

TEST(HistogramQuantile, InterpolatesWithinObservedRange) {
  metrics::Histogram h;
  EXPECT_TRUE(std::isnan(h.quantile(0.5)));
  for (int i = 0; i < 1000; ++i)
    h.observe(1e-3);  // all samples in one bucket
  const double p50 = h.quantile(0.5);
  EXPECT_EQ(p50, 1e-3);  // clamped to [min, max]
  h.observe(1.0);
  EXPECT_LE(h.quantile(0.999), 1.0);
  EXPECT_GE(h.quantile(0.999), 1e-3);
  EXPECT_EQ(h.quantile(1.0), 1.0);
}

TEST(HistogramQuantile, OrderedAcrossProbabilities) {
  metrics::Histogram h;
  Xoshiro256ss rng(7);
  for (int i = 0; i < 5000; ++i) {
    const double u = static_cast<double>(rng() >> 11) * 0x1.0p-53;
    h.observe(1e-4 * std::exp(4.0 * u));
  }
  double last = 0.0;
  for (const double q : {0.1, 0.5, 0.9, 0.99, 1.0}) {
    const double v = h.quantile(q);
    EXPECT_GE(v, last);
    EXPECT_GE(v, h.min());
    EXPECT_LE(v, h.max());
    last = v;
  }
}

}  // namespace
}  // namespace pac::serve
