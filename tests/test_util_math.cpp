// Unit and property tests for the numerical kernels (util/math.hpp).
#include "util/math.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <random>
#include <vector>

#include "util/rng.hpp"

namespace pac {
namespace {

TEST(LogSumExp, EmptyIsMinusInfinity) {
  EXPECT_EQ(logsumexp({}), -std::numeric_limits<double>::infinity());
}

TEST(LogSumExp, SingleValueIsIdentity) {
  const double v[] = {-3.5};
  EXPECT_DOUBLE_EQ(logsumexp(std::span<const double>(v, 1)), -3.5);
}

TEST(LogSumExp, MatchesDirectComputationInSafeRange) {
  const std::vector<double> v = {-1.0, 0.5, 2.0, -0.3};
  double direct = 0.0;
  for (double x : v) direct += std::exp(x);
  EXPECT_NEAR(logsumexp(v), std::log(direct), 1e-12);
}

TEST(LogSumExp, StableForLargeMagnitudes) {
  const std::vector<double> v = {-1000.0, -1000.5, -999.0};
  const double r = logsumexp(v);
  EXPECT_TRUE(std::isfinite(r));
  EXPECT_GT(r, -999.0);        // >= max
  EXPECT_LT(r, -999.0 + 1.2);  // <= max + log(n)
}

TEST(LogSumExp, DominatedByMaximum) {
  const std::vector<double> v = {0.0, -800.0};
  EXPECT_NEAR(logsumexp(v), 0.0, 1e-12);
}

TEST(LogSumExp2, AgreesWithVectorVersion) {
  Xoshiro256ss g(5);
  for (int i = 0; i < 200; ++i) {
    const double a = uniform_in(g, -50.0, 50.0);
    const double b = uniform_in(g, -50.0, 50.0);
    const std::vector<double> v = {a, b};
    EXPECT_NEAR(logsumexp2(a, b), logsumexp(v), 1e-12);
  }
}

TEST(LogSumExp2, HandlesInfinities) {
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_DOUBLE_EQ(logsumexp2(-inf, 3.0), 3.0);
  EXPECT_DOUBLE_EQ(logsumexp2(3.0, -inf), 3.0);
}

TEST(KahanSum, ExactForIllConditionedSeries) {
  KahanSum k;
  k.add(1.0);
  for (int i = 0; i < 10000000 && i < 100000; ++i) k.add(1e-16);
  // Plain summation would lose every tiny addend.
  EXPECT_GT(k.value(), 1.0);
  EXPECT_NEAR(k.value(), 1.0 + 100000 * 1e-16, 1e-18);
}

TEST(KahanSum, MatchesPlainSumForBenignData) {
  KahanSum k;
  double plain = 0.0;
  for (int i = 1; i <= 1000; ++i) {
    k.add(1.0 / i);
    plain += 1.0 / i;
  }
  EXPECT_NEAR(k.value(), plain, 1e-12);
}

TEST(KahanSum, ResetClears) {
  KahanSum k;
  k.add(5.0);
  k.reset();
  EXPECT_EQ(k.value(), 0.0);
}

TEST(Digamma, MatchesKnownValues) {
  // psi(1) = -gamma, psi(2) = 1 - gamma, psi(1/2) = -gamma - 2 ln 2.
  const double euler_gamma = 0.5772156649015329;
  EXPECT_NEAR(digamma(1.0), -euler_gamma, 1e-10);
  EXPECT_NEAR(digamma(2.0), 1.0 - euler_gamma, 1e-10);
  EXPECT_NEAR(digamma(0.5), -euler_gamma - 2.0 * std::log(2.0), 1e-10);
}

TEST(Digamma, SatisfiesRecurrence) {
  // psi(x+1) = psi(x) + 1/x.
  for (double x : {0.3, 1.7, 4.2, 11.0}) {
    EXPECT_NEAR(digamma(x + 1.0), digamma(x) + 1.0 / x, 1e-10);
  }
}

TEST(Digamma, IsDerivativeOfLogGamma) {
  for (double x : {0.8, 2.5, 7.0}) {
    const double h = 1e-6;
    const double numeric = (log_gamma(x + h) - log_gamma(x - h)) / (2 * h);
    EXPECT_NEAR(digamma(x), numeric, 1e-6);
  }
}

TEST(LogMultivariateBeta, MatchesBetaFunctionFor2) {
  // B(a, b) = Gamma(a) Gamma(b) / Gamma(a + b).
  const std::vector<double> alpha = {2.0, 3.0};
  const double expected =
      log_gamma(2.0) + log_gamma(3.0) - log_gamma(5.0);
  EXPECT_NEAR(log_multivariate_beta(alpha), expected, 1e-12);
}

TEST(LogMultivariateBeta, SymmetricDirichletKnownValue) {
  // B(1,1,1) = Gamma(1)^3 / Gamma(3) = 1/2.
  const std::vector<double> alpha = {1.0, 1.0, 1.0};
  EXPECT_NEAR(log_multivariate_beta(alpha), std::log(0.5), 1e-12);
}

TEST(LogNormalPdf, IntegratesToOne) {
  // Riemann sum over a wide grid.
  const double mean = 1.3, sigma = 0.7;
  double integral = 0.0;
  const double dx = 0.001;
  for (double x = mean - 10 * sigma; x < mean + 10 * sigma; x += dx)
    integral += std::exp(log_normal_pdf(x, mean, sigma)) * dx;
  EXPECT_NEAR(integral, 1.0, 1e-4);
}

TEST(LogNormalPdf, PeaksAtMean) {
  EXPECT_GT(log_normal_pdf(2.0, 2.0, 1.0), log_normal_pdf(2.4, 2.0, 1.0));
  EXPECT_GT(log_normal_pdf(2.0, 2.0, 1.0), log_normal_pdf(1.6, 2.0, 1.0));
}

TEST(Normalize, MakesUnitSum) {
  std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  const double pre = normalize(v);
  EXPECT_DOUBLE_EQ(pre, 10.0);
  double sum = 0.0;
  for (double x : v) sum += x;
  EXPECT_NEAR(sum, 1.0, 1e-15);
  EXPECT_NEAR(v[3], 0.4, 1e-15);
}

TEST(Normalize, AllZeroLeftUntouched) {
  std::vector<double> v = {0.0, 0.0};
  EXPECT_EQ(normalize(v), 0.0);
  EXPECT_EQ(v[0], 0.0);
}

TEST(MeanVariance, MatchKnownValues) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(mean_of(v), 3.0);
  EXPECT_DOUBLE_EQ(variance_of(v), 2.0);  // population variance
}

TEST(MeanVariance, DegenerateInputs) {
  EXPECT_EQ(mean_of({}), 0.0);
  const std::vector<double> one = {7.0};
  EXPECT_EQ(variance_of(one), 0.0);
}

TEST(WeightedMoments, MatchesDirectComputation) {
  WeightedMoments m;
  const std::vector<double> x = {1.0, 5.0, -2.0, 3.5};
  const std::vector<double> w = {0.5, 2.0, 1.0, 0.25};
  double sw = 0.0, swx = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    m.add(x[i], w[i]);
    sw += w[i];
    swx += w[i] * x[i];
  }
  const double mean = swx / sw;
  double scatter = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i)
    scatter += w[i] * sq(x[i] - mean);
  EXPECT_NEAR(m.weight(), sw, 1e-12);
  EXPECT_NEAR(m.mean(), mean, 1e-12);
  EXPECT_NEAR(m.variance(), scatter / sw, 1e-12);
  EXPECT_NEAR(m.scatter(), scatter, 1e-12);
}

TEST(WeightedMoments, IgnoresNonPositiveWeights) {
  WeightedMoments m;
  m.add(100.0, 0.0);
  m.add(3.0, 1.0);
  m.add(-50.0, -1.0);
  EXPECT_DOUBLE_EQ(m.mean(), 3.0);
  EXPECT_DOUBLE_EQ(m.weight(), 1.0);
}

TEST(SafeLog, GuardsNonPositive) {
  EXPECT_EQ(safe_log(0.0), kLogTiny);
  EXPECT_EQ(safe_log(-1.0), kLogTiny);
  EXPECT_DOUBLE_EQ(safe_log(std::exp(1.0)), 1.0);
}

// ---- SPD kernels ----

TEST(Cholesky, FactorsKnownMatrix) {
  // A = [[4, 2], [2, 3]] -> L = [[2, 0], [1, sqrt(2)]].
  std::vector<double> a = {4.0, 2.0, 2.0, 3.0};
  ASSERT_TRUE(spd::cholesky(a, 2));
  EXPECT_NEAR(a[0], 2.0, 1e-12);
  EXPECT_NEAR(a[2], 1.0, 1e-12);
  EXPECT_NEAR(a[3], std::sqrt(2.0), 1e-12);
}

TEST(Cholesky, RejectsIndefiniteMatrix) {
  std::vector<double> a = {1.0, 2.0, 2.0, 1.0};  // eigenvalues 3, -1
  EXPECT_FALSE(spd::cholesky(a, 2));
}

TEST(Cholesky, LogDetMatchesDirect) {
  std::vector<double> a = {4.0, 2.0, 2.0, 3.0};
  ASSERT_TRUE(spd::cholesky(a, 2));
  // det = 4*3 - 2*2 = 8.
  EXPECT_NEAR(spd::log_det_from_cholesky(a, 2), std::log(8.0), 1e-12);
}

TEST(Cholesky, RoundTripsRandomSpdMatrices) {
  Xoshiro256ss g(71);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t d = 1 + trial % 5;
    // Build A = M M^T + d I (guaranteed SPD).
    std::vector<double> m(d * d);
    for (double& v : m) v = uniform_in(g, -1.0, 1.0);
    std::vector<double> a(d * d, 0.0);
    for (std::size_t i = 0; i < d; ++i)
      for (std::size_t j = 0; j < d; ++j) {
        for (std::size_t k = 0; k < d; ++k)
          a[i * d + j] += m[i * d + k] * m[j * d + k];
        if (i == j) a[i * d + j] += static_cast<double>(d);
      }
    std::vector<double> l = a;
    ASSERT_TRUE(spd::cholesky(l, d));
    // Check L L^T == A on the lower triangle.
    for (std::size_t i = 0; i < d; ++i)
      for (std::size_t j = 0; j <= i; ++j) {
        double v = 0.0;
        for (std::size_t k = 0; k <= j; ++k)
          v += l[i * d + k] * l[j * d + k];
        EXPECT_NEAR(v, a[i * d + j], 1e-9);
      }
  }
}

TEST(ForwardSolve, SolvesLowerTriangularSystem) {
  // L = [[2, 0], [1, 3]], b = [4, 7] -> y = [2, 5/3].
  const std::vector<double> l = {2.0, 0.0, 1.0, 3.0};
  std::vector<double> b = {4.0, 7.0};
  spd::forward_solve(l, 2, b);
  EXPECT_NEAR(b[0], 2.0, 1e-12);
  EXPECT_NEAR(b[1], 5.0 / 3.0, 1e-12);
}

TEST(Mahalanobis, IdentityCovarianceIsSquaredNorm) {
  std::vector<double> a = {1.0, 0.0, 0.0, 1.0};
  ASSERT_TRUE(spd::cholesky(a, 2));
  const std::vector<double> x = {3.0, 4.0};
  EXPECT_NEAR(spd::mahalanobis2(a, 2, x), 25.0, 1e-12);
}

TEST(Mahalanobis, ScalesInverselyWithVariance) {
  std::vector<double> a = {4.0, 0.0, 0.0, 9.0};
  ASSERT_TRUE(spd::cholesky(a, 2));
  const std::vector<double> x = {2.0, 3.0};
  // x^T diag(1/4, 1/9) x = 1 + 1 = 2.
  EXPECT_NEAR(spd::mahalanobis2(a, 2, x), 2.0, 1e-12);
}

TEST(Mahalanobis, LargeDimensionUsesHeapPath) {
  const std::size_t d = 40;  // > the 32-element stack buffer
  std::vector<double> a(d * d, 0.0);
  for (std::size_t i = 0; i < d; ++i) a[i * d + i] = 1.0;
  ASSERT_TRUE(spd::cholesky(a, d));
  std::vector<double> x(d, 1.0);
  EXPECT_NEAR(spd::mahalanobis2(a, d, x), static_cast<double>(d), 1e-9);
}

}  // namespace
}  // namespace pac
