// Property-based sweeps over the model terms and the EM engine, run across
// many random configurations (TEST_P over seeds).
//
// Key invariants:
//  * MAP optimality — for heavy statistics (prior negligible) the parameters
//    produced by update_params maximize log_likelihood_of_stats: any
//    perturbation must not increase it.
//  * Marginal consistency — adding data to a class can only change the
//    marginal smoothly; empty stats are the identity.
//  * EM invariances — class weights always sum to N; scores are finite;
//    label assignments are invariant under class reordering.
#include <gtest/gtest.h>

#include <cmath>

#include "autoclass/em.hpp"
#include "autoclass/report.hpp"
#include "data/synth.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace pac::ac {
namespace {

class PropertySeed : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PropertySeed, NormalMapParamsMaximizeStatsLikelihood) {
  const std::uint64_t seed = GetParam();
  Xoshiro256ss rng(seed);
  // Random heavy-weight dataset.
  const double mu = uniform_in(rng, -20.0, 20.0);
  const double sigma = uniform_in(rng, 0.2, 5.0);
  std::vector<data::GaussianComponent> mix = {{1.0, {mu}, {sigma}}};
  const data::LabeledDataset ld =
      data::gaussian_mixture(mix, 5000, seed * 3 + 1);
  const Model model = Model::default_model(ld.dataset);
  const Term& term = model.term(0);
  std::vector<double> stats(term.stats_size(), 0.0);
  for (std::size_t i = 0; i < 5000; ++i) term.accumulate(i, 1.0, stats);
  std::vector<double> params(term.param_size(), 0.0);
  term.update_params(stats, params);
  const double at_map = term.log_likelihood_of_stats(stats, params);
  for (int p = 0; p < 10; ++p) {
    std::vector<double> perturbed = params;
    perturbed[0] += uniform_in(rng, -0.5, 0.5);
    perturbed[1] = std::max(1e-3, perturbed[1] + uniform_in(rng, -0.3, 0.3));
    perturbed[2] = std::log(perturbed[1]);
    // Allow a hair of slack: the prior pulls MAP off pure ML by O(1/N).
    EXPECT_LE(term.log_likelihood_of_stats(stats, perturbed),
              at_map + 0.1);
  }
}

TEST_P(PropertySeed, MultinomialMapParamsMaximizeStatsLikelihood) {
  const std::uint64_t seed = GetParam();
  Xoshiro256ss rng(seed ^ 0xC0FFEE);
  std::vector<double> probs(4);
  for (double& p : probs) p = uniform_in(rng, 0.05, 1.0);
  normalize(probs);
  const std::vector<data::CategoricalComponent> mix = {{1.0, {probs}}};
  const data::LabeledDataset ld =
      data::categorical_mixture(mix, 4000, seed * 5 + 2);
  const Model model = Model::default_model(ld.dataset);
  const Term& term = model.term(0);
  std::vector<double> stats(term.stats_size(), 0.0);
  for (std::size_t i = 0; i < 4000; ++i) term.accumulate(i, 1.0, stats);
  std::vector<double> params(term.param_size(), 0.0);
  term.update_params(stats, params);
  const double at_map = term.log_likelihood_of_stats(stats, params);
  for (int p = 0; p < 10; ++p) {
    // Random perturbed distribution.
    std::vector<double> theta(params.size());
    for (std::size_t l = 0; l < theta.size(); ++l)
      theta[l] = std::exp(params[l]) + uniform_in(rng, 0.0, 0.2);
    normalize(theta);
    std::vector<double> perturbed(theta.size());
    for (std::size_t l = 0; l < theta.size(); ++l)
      perturbed[l] = std::log(theta[l]);
    EXPECT_LE(term.log_likelihood_of_stats(stats, perturbed), at_map + 0.5);
  }
}

TEST_P(PropertySeed, MarginalGrowsSmoothlyWithData) {
  const std::uint64_t seed = GetParam();
  const data::LabeledDataset ld = data::paper_dataset(1000, seed * 7 + 3);
  const Model model = Model::default_model(ld.dataset);
  const Term& term = model.term(0);
  std::vector<double> stats(term.stats_size(), 0.0);
  double previous = term.log_marginal(stats);
  EXPECT_EQ(previous, 0.0);
  for (std::size_t i = 0; i < 200; ++i) {
    term.accumulate(i, 1.0, stats);
    const double current = term.log_marginal(stats);
    EXPECT_TRUE(std::isfinite(current));
    // One observation changes the marginal by a bounded amount.
    EXPECT_LT(std::abs(current - previous), 50.0);
    previous = current;
  }
}

TEST_P(PropertySeed, EmInvariantsHoldAcrossRandomConfigs) {
  const std::uint64_t seed = GetParam();
  Xoshiro256ss rng(seed ^ 0xBEEF);
  const std::size_t n = 200 + uniform_index(rng, 800);
  const std::size_t j = 2 + uniform_index(rng, 6);
  data::LabeledDataset ld = data::paper_dataset(n, seed * 11 + 4);
  if (uniform01(rng) < 0.5) data::inject_missing(ld.dataset, 0.1, seed);
  const Model model = Model::default_model(ld.dataset);
  Reducer identity;
  EmWorker worker(model, data::ItemRange{0, n}, identity);
  Classification c(model, j);
  EmConfig config;
  config.max_cycles = 15;
  worker.random_init(c, seed, 0, config);
  worker.converge(c, config);

  // Class weights sum to the item count.
  double total = 0.0;
  for (std::size_t k = 0; k < j; ++k) total += c.weight(k);
  EXPECT_NEAR(total, static_cast<double>(n), 1e-6);
  // Scores are finite and ordered (approximations below max likelihood).
  EXPECT_TRUE(std::isfinite(c.log_likelihood));
  EXPECT_TRUE(std::isfinite(c.cs_score));
  EXPECT_LT(c.cs_score, c.log_likelihood);
  // Mixing weights are a distribution.
  double pi_sum = 0.0;
  for (std::size_t k = 0; k < j; ++k) pi_sum += std::exp(c.log_pi(k));
  EXPECT_NEAR(pi_sum, 1.0, 1e-9);
}

TEST_P(PropertySeed, SortingClassesPreservesAssignments) {
  const std::uint64_t seed = GetParam();
  const data::LabeledDataset ld = data::paper_dataset(400, seed * 13 + 5);
  const Model model = Model::default_model(ld.dataset);
  Reducer identity;
  EmWorker worker(model, data::ItemRange{0, 400}, identity);
  Classification c(model, 4);
  EmConfig config;
  config.max_cycles = 20;
  worker.random_init(c, seed, 0, config);
  worker.converge(c, config);

  const auto before = assign_labels(c);
  Classification sorted = c;
  sorted.sort_classes_by_weight();
  const auto after = assign_labels(sorted);
  // The partition is identical; only class indices are permuted.
  EXPECT_DOUBLE_EQ(data::adjusted_rand_index(before, after), 1.0);
}

TEST_P(PropertySeed, PredictConsistentWithMembershipArgmax) {
  const std::uint64_t seed = GetParam();
  const data::LabeledDataset ld = data::paper_dataset(300, seed * 17 + 6);
  const Model model = Model::default_model(ld.dataset);
  Reducer identity;
  EmWorker worker(model, data::ItemRange{0, 300}, identity);
  Classification c(model, 3);
  EmConfig config;
  config.max_cycles = 15;
  worker.random_init(c, seed, 0, config);
  worker.converge(c, config);

  const auto labels = predict_labels(c, model.dataset());
  for (std::size_t i = 0; i < 20; ++i) {
    const auto m = predict_membership(c, model.dataset(), i * 14);
    std::size_t argmax = 0;
    for (std::size_t k = 1; k < m.size(); ++k)
      if (m[k] > m[argmax]) argmax = k;
    EXPECT_EQ(static_cast<std::size_t>(labels[i * 14]), argmax);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertySeed,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           34u));

}  // namespace
}  // namespace pac::ac
