// Tests for the instrumentation layer: metrics registry, event ring,
// scoped phase timers over a manual virtual clock, the merge path used by
// mp::World, and the chrome://tracing exporter.
#include <gtest/gtest.h>

#include <cstddef>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "mp/comm.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace pac {
namespace {

TEST(Metrics, CounterFindOrCreateAndAdd) {
  metrics::Registry reg;
  EXPECT_TRUE(reg.empty());
  reg.counter("a").add();
  reg.counter("a").add(4);
  reg.counter("b").add(2);
  EXPECT_EQ(reg.counter_value("a"), 5u);
  EXPECT_EQ(reg.counter_value("b"), 2u);
  EXPECT_EQ(reg.counter_value("missing"), 0u);
  EXPECT_FALSE(reg.empty());
}

TEST(Metrics, CounterReferencesAreStable) {
  metrics::Registry reg;
  metrics::Counter& a = reg.counter("a");
  // Creating many more counters must not invalidate the first handle
  // (the mp layer caches these pointers per rank).
  for (int i = 0; i < 100; ++i)
    reg.counter("filler." + std::to_string(i)).add(1);
  a.add(7);
  EXPECT_EQ(reg.counter_value("a"), 7u);
}

TEST(Metrics, HistogramStatistics) {
  metrics::Registry reg;
  metrics::Histogram& h = reg.histogram("h");
  h.observe(1.0);
  h.observe(2.0);
  h.observe(3.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 6.0);
  EXPECT_DOUBLE_EQ(h.mean(), 2.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 3.0);
  EXPECT_DOUBLE_EQ(reg.histogram_sum("h"), 6.0);
  EXPECT_EQ(reg.find_histogram("nope"), nullptr);
}

TEST(Metrics, MergeAggregatesAcrossRegistries) {
  // The per-rank registries of a run are merged rank by rank at finalize;
  // counters add, histograms combine counts/sums/extrema.
  metrics::Registry r0;
  metrics::Registry r1;
  r0.counter("c").add(3);
  r1.counter("c").add(4);
  r1.counter("only1").add(1);
  r0.histogram("h").observe(1.0);
  r1.histogram("h").observe(5.0);

  metrics::Registry merged;
  merged.merge_from(r0);
  merged.merge_from(r1);
  EXPECT_EQ(merged.counter_value("c"), 7u);
  EXPECT_EQ(merged.counter_value("only1"), 1u);
  const metrics::Histogram* h = merged.find_histogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 2u);
  EXPECT_DOUBLE_EQ(h->sum(), 6.0);
  EXPECT_DOUBLE_EQ(h->min(), 1.0);
  EXPECT_DOUBLE_EQ(h->max(), 5.0);
}

TEST(Metrics, ReportListsRecordedEntries) {
  metrics::Registry reg;
  reg.counter("hits").add(12);
  reg.counter("silent");  // zero: filtered from the report
  reg.histogram("lat").observe(0.5);
  std::ostringstream os;
  metrics::write_report(os, reg, "unit");
  const std::string out = os.str();
  EXPECT_NE(out.find("metrics report: unit"), std::string::npos);
  EXPECT_NE(out.find("hits"), std::string::npos);
  EXPECT_NE(out.find("12"), std::string::npos);
  EXPECT_NE(out.find("lat"), std::string::npos);
  EXPECT_EQ(out.find("silent"), std::string::npos);
}

TEST(EventRing, KeepsNewestAndCountsDropped) {
  trace::EventRing ring(4);
  for (int i = 0; i < 10; ++i)
    ring.record(trace::Event{"t", "e", 0, static_cast<double>(i),
                             static_cast<double>(i) + 0.5});
  EXPECT_EQ(ring.recorded(), 10u);
  EXPECT_EQ(ring.dropped(), 6u);
  EXPECT_EQ(ring.size(), 4u);
  const std::vector<trace::Event> events = ring.snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-to-newest: the survivors are events 6..9.
  for (std::size_t i = 0; i < events.size(); ++i)
    EXPECT_DOUBLE_EQ(events[i].start, 6.0 + static_cast<double>(i));
}

TEST(Recorder, ScopedPhasesNestOverVirtualClock) {
  if (!trace::compiled_in())
    GTEST_SKIP() << "ScopedPhase is a no-op with -DPAC_TRACE=OFF";
  trace::Recorder rec(0);
  double clock = 0.0;
  rec.set_clock([&clock] { return clock; });
  {
    trace::ScopedPhase outer(&rec, "em", "base_cycle");
    clock = 1.0;
    {
      trace::ScopedPhase inner(&rec, "em", "update_wts");
      clock = 3.0;
    }
    clock = 4.0;
  }
  const std::vector<trace::Event> events = rec.events().snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Inner closes first; both spans cover their exact virtual windows.
  EXPECT_STREQ(events[0].name, "update_wts");
  EXPECT_DOUBLE_EQ(events[0].start, 1.0);
  EXPECT_DOUBLE_EQ(events[0].end, 3.0);
  EXPECT_STREQ(events[1].name, "base_cycle");
  EXPECT_DOUBLE_EQ(events[1].start, 0.0);
  EXPECT_DOUBLE_EQ(events[1].end, 4.0);
  EXPECT_DOUBLE_EQ(rec.metrics().histogram_sum("em.update_wts"), 2.0);
  EXPECT_DOUBLE_EQ(rec.metrics().histogram_sum("em.base_cycle"), 4.0);
}

TEST(Recorder, NullRecorderScopeIsNoOp) {
  // The runtime-disabled path: a null recorder pointer must be safe.
  trace::ScopedPhase phase(nullptr, "em", "update_wts");
  PAC_TRACE_SCOPE(nullptr, "em", "update_wts");
}

TEST(Trace, CompileTimeToggleMatchesMacro) {
#if PAC_TRACE_ENABLED
  EXPECT_TRUE(trace::compiled_in());
#else
  EXPECT_FALSE(trace::compiled_in());
  // Compiled out, the macro must not evaluate its recorder expression.
  bool evaluated = false;
  auto poison = [&]() -> trace::Recorder* {
    evaluated = true;
    return nullptr;
  };
  PAC_TRACE_SCOPE(poison(), "em", "never");
  (void)poison;
  EXPECT_FALSE(evaluated);
#endif
}

TEST(Trace, ChromeTraceExportIsWellFormed) {
  const std::vector<trace::Event> events = {
      {"mp", "allreduce", 0, 0.001, 0.002},
      {"em", "update \"wts\"\\n", 1, 0.0, 0.004},
  };
  std::ostringstream os;
  trace::write_chrome_trace(os, events);
  const std::string json = os.str();
  // Structural checks a JSON parser would enforce.
  EXPECT_EQ(json.front(), '{');
  ASSERT_GE(json.size(), 2u);
  std::size_t braces = 0;
  std::size_t brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') ++i;  // skip the escaped character
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{') ++braces;
    else if (c == '}') --braces;
    else if (c == '[') ++brackets;
    else if (c == ']') --brackets;
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(braces, 0u);
  EXPECT_EQ(brackets, 0u);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // Durations are exported in microseconds.
  EXPECT_NE(json.find("\"allreduce\""), std::string::npos);
  // The quoted-name event must arrive escaped, not raw.
  EXPECT_EQ(json.find("update \"wts\""), std::string::npos);
}

TEST(Trace, EventsCsvRoundTripsFields) {
  const std::vector<trace::Event> events = {{"mp", "bcast", 2, 0.5, 0.75}};
  std::ostringstream os;
  trace::write_events_csv(os, events);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("rank,category,name,start,end"), std::string::npos);
  EXPECT_NE(csv.find("2,mp,bcast,"), std::string::npos);
}

TEST(WorldIntegration, InstrumentedRunMergesPerRankRecorders) {
  if (!trace::compiled_in())
    GTEST_SKIP() << "tracing layer compiled out (-DPAC_TRACE=OFF)";
  mp::World::Config cfg;
  cfg.num_ranks = 4;
  cfg.machine = net::ideal_machine();
  cfg.instrument = true;
  mp::World world(cfg);
  mp::RunStats stats = world.run([](mp::Comm& comm) {
    if (trace::Recorder* rec = comm.recorder())
      rec->metrics().counter("test.per_rank").add(1);
    double v = 1.0;
    comm.allreduce_inplace<double>(std::span<double>(&v, 1),
                                   mp::ReduceOp::kSum);
  });
  ASSERT_TRUE(stats.instrumented);
  // One increment per rank, merged at finalize.
  EXPECT_EQ(stats.metrics.counter_value("test.per_rank"), 4u);
  EXPECT_EQ(stats.metrics.counter_value("mp.allreduce.calls"), 4u);
  EXPECT_EQ(stats.events_dropped, 0u);
  // Merged events are sorted by start time.
  for (std::size_t i = 1; i < stats.events.size(); ++i)
    EXPECT_LE(stats.events[i - 1].start, stats.events[i].start);
}

TEST(WorldIntegration, UninstrumentedRunRecordsNothing) {
  mp::World::Config cfg;
  cfg.num_ranks = 2;
  cfg.machine = net::ideal_machine();
  cfg.instrument = false;
  mp::World world(cfg);
  mp::RunStats stats = world.run([](mp::Comm& comm) {
    EXPECT_EQ(comm.recorder(), nullptr);
    double v = 1.0;
    comm.allreduce_inplace<double>(std::span<double>(&v, 1),
                                   mp::ReduceOp::kSum);
  });
  EXPECT_FALSE(stats.instrumented);
  EXPECT_TRUE(stats.metrics.empty());
  EXPECT_TRUE(stats.events.empty());
}

}  // namespace
}  // namespace pac
