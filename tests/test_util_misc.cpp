// Tests for Table, CLI parsing, error macros, the thread pool, and the
// logger.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <sstream>
#include <vector>

#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace pac {
namespace {

// ---- Table ----

TEST(Table, PrintsHeaderAndRows) {
  Table t("demo");
  t.set_header({"x", "a", "b"});
  t.add_row({"1", "10", "20"});
  t.add_row({"2", "30", "40"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("10"), std::string::npos);
  EXPECT_NE(out.find("40"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RejectsMismatchedRowWidth) {
  Table t("demo");
  t.set_header({"x", "y"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Table, AlignsColumns) {
  Table t("demo");
  t.set_header({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "22222"});
  std::ostringstream os;
  t.print(os);
  // Each data line must be equally long (aligned columns).
  std::istringstream is(os.str());
  std::string line;
  std::getline(is, line);  // title
  std::getline(is, line);  // header
  const std::size_t width = line.size();
  std::getline(is, line);  // rule
  while (std::getline(is, line)) {
    if (!line.empty()) {
      EXPECT_EQ(line.size(), width);
    }
  }
}

TEST(FormatHms, FormatsPaperStyle) {
  EXPECT_EQ(format_hms(0.0), "0.00.00");
  EXPECT_EQ(format_hms(61.0), "0.01.01");
  EXPECT_EQ(format_hms(3661.0), "1.01.01");
  EXPECT_EQ(format_hms(10 * 3600 + 59 * 60 + 59), "10.59.59");
}

TEST(FormatHms, RoundsToNearestSecond) {
  EXPECT_EQ(format_hms(59.6), "0.01.00");
  EXPECT_EQ(format_hms(0.4), "0.00.00");
}

TEST(FormatHms, RejectsNegative) { EXPECT_THROW(format_hms(-1.0), Error); }

TEST(FormatFixed, HonorsDigits) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(2.0, 0), "2");
  EXPECT_EQ(format_fixed(-0.5, 3), "-0.500");
}

// ---- CLI ----

Cli make_cli(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Cli(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, ParsesSpaceSeparatedValues) {
  const Cli cli = make_cli({"--items", "5000", "--name", "meiko"});
  EXPECT_EQ(cli.get_int("items", 0), 5000);
  EXPECT_EQ(cli.get_string("name", ""), "meiko");
}

TEST(Cli, ParsesEqualsForm) {
  const Cli cli = make_cli({"--items=123", "--ratio=0.5"});
  EXPECT_EQ(cli.get_int("items", 0), 123);
  EXPECT_DOUBLE_EQ(cli.get_double("ratio", 0.0), 0.5);
}

TEST(Cli, BareFlagIsTrueBoolean) {
  const Cli cli = make_cli({"--verbose"});
  EXPECT_TRUE(cli.get_bool("verbose", false));
  EXPECT_TRUE(cli.has("verbose"));
  EXPECT_FALSE(cli.has("quiet"));
}

TEST(Cli, BooleanSpellings) {
  EXPECT_TRUE(make_cli({"--x", "yes"}).get_bool("x", false));
  EXPECT_TRUE(make_cli({"--x", "on"}).get_bool("x", false));
  EXPECT_FALSE(make_cli({"--x", "0"}).get_bool("x", true));
  EXPECT_FALSE(make_cli({"--x", "off"}).get_bool("x", true));
}

TEST(Cli, DefaultsWhenAbsent) {
  const Cli cli = make_cli({});
  EXPECT_EQ(cli.get_int("n", 7), 7);
  EXPECT_EQ(cli.get_string("s", "d"), "d");
  EXPECT_DOUBLE_EQ(cli.get_double("d", 1.5), 1.5);
  EXPECT_TRUE(cli.get_bool("b", true));
}

TEST(Cli, ParsesIntLists) {
  const Cli cli = make_cli({"--sizes", "5000,10000,25000"});
  const auto sizes = cli.get_int_list("sizes", {});
  ASSERT_EQ(sizes.size(), 3u);
  EXPECT_EQ(sizes[0], 5000);
  EXPECT_EQ(sizes[2], 25000);
}

TEST(Cli, IntListDefault) {
  const Cli cli = make_cli({});
  const auto v = cli.get_int_list("sizes", {1, 2});
  ASSERT_EQ(v.size(), 2u);
}

TEST(Cli, RejectsMalformedNumbers) {
  const Cli cli = make_cli({"--n", "12x", "--d", "zz", "--b", "maybe",
                            "--list", "1,two"});
  EXPECT_THROW(cli.get_int("n", 0), Error);
  EXPECT_THROW(cli.get_double("d", 0.0), Error);
  EXPECT_THROW(cli.get_bool("b", false), Error);
  EXPECT_THROW(cli.get_int_list("list", {}), Error);
}

TEST(Cli, CollectsPositionalArguments) {
  const Cli cli = make_cli({"file1.db2", "--n", "3", "file2.db2"});
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "file1.db2");
  EXPECT_EQ(cli.positional()[1], "file2.db2");
}

TEST(Cli, NegativeValueAfterFlag) {
  // "-5" does not start with "--", so it is consumed as the value.
  const Cli cli = make_cli({"--offset", "-5"});
  EXPECT_EQ(cli.get_int("offset", 0), -5);
}

// ---- error macros ----

TEST(ErrorMacros, CheckThrowsWithLocation) {
  try {
    PAC_CHECK(1 == 2);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("test_util_misc.cpp"), std::string::npos);
  }
}

TEST(ErrorMacros, MessageIsStreamed) {
  try {
    const int n = 42;
    PAC_REQUIRE_MSG(n < 10, "n was " << n);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("n was 42"), std::string::npos);
  }
}

TEST(ErrorMacros, PassingChecksAreSilent) {
  EXPECT_NO_THROW(PAC_CHECK(true));
  EXPECT_NO_THROW(PAC_REQUIRE(2 + 2 == 4));
}

// ---- thread pool ----

TEST(ThreadPool, RunCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.threads(), 4u);
  constexpr std::size_t kCount = 500;
  std::vector<std::atomic<int>> hits(kCount);
  pool.run(kCount, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, ReusableAcrossJobs) {
  // One pool serves many job generations (the EM loop submits two jobs per
  // cycle for hundreds of cycles).
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> sum{0};
    pool.run(17, [&](std::size_t i) { sum.fetch_add(static_cast<int>(i)); });
    EXPECT_EQ(sum.load(), 17 * 16 / 2);
  }
}

TEST(ThreadPool, DegenerateShapes) {
  ThreadPool one(1);  // no OS threads: run() is a plain loop
  EXPECT_EQ(one.threads(), 1u);
  std::atomic<int> calls{0};
  one.run(5, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 5);
  ThreadPool wide(8);  // more threads than work
  calls.store(0);
  wide.run(2, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 2);
  wide.run(0, [&](std::size_t) { calls.fetch_add(1); });  // no-op
  EXPECT_EQ(calls.load(), 2);
  ThreadPool zero(0);  // clamped to 1
  EXPECT_EQ(zero.threads(), 1u);
}

TEST(ThreadPool, ResolveExplicitAndEnv) {
  // An explicit request wins over the environment.
  setenv("PAC_EM_THREADS", "7", 1);
  EXPECT_EQ(ThreadPool::resolve(3), 3u);
  // 0 = read PAC_EM_THREADS.
  EXPECT_EQ(ThreadPool::resolve(0), 7u);
  // Unset / empty / garbage / non-positive all fall back to 1.
  unsetenv("PAC_EM_THREADS");
  EXPECT_EQ(ThreadPool::resolve(0), 1u);
  setenv("PAC_EM_THREADS", "", 1);
  EXPECT_EQ(ThreadPool::resolve(0), 1u);
  setenv("PAC_EM_THREADS", "two", 1);
  EXPECT_EQ(ThreadPool::resolve(0), 1u);
  setenv("PAC_EM_THREADS", "4x", 1);
  EXPECT_EQ(ThreadPool::resolve(0), 1u);
  setenv("PAC_EM_THREADS", "0", 1);
  EXPECT_EQ(ThreadPool::resolve(0), 1u);
  setenv("PAC_EM_THREADS", "-2", 1);
  EXPECT_EQ(ThreadPool::resolve(0), 1u);
  // Huge values clamp instead of exploding.
  setenv("PAC_EM_THREADS", "100000", 1);
  EXPECT_EQ(ThreadPool::resolve(0), ThreadPool::kMaxThreads);
  EXPECT_EQ(ThreadPool::resolve(1 << 20), ThreadPool::kMaxThreads);
  unsetenv("PAC_EM_THREADS");
}

// ---- logger ----

TEST(Log, LevelFiltering) {
  const LogLevel old = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // Below threshold: must not crash and must be filtered (no observable
  // output channel to assert on; this exercises the path).
  PAC_LOG_DEBUG << "dropped";
  PAC_LOG_INFO << "dropped too";
  set_log_level(old);
}

}  // namespace
}  // namespace pac
