// Tests for the model-level search (BIG_LOOP): J selection, duplicate
// elimination, leaderboard maintenance, and end-to-end model recovery.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "autoclass/report.hpp"
#include "autoclass/search.hpp"
#include "data/synth.hpp"
#include "util/error.hpp"

namespace pac::ac {
namespace {

TEST(SelectJ, WalksTheStartListFirst) {
  SearchConfig config;
  config.start_j_list = {2, 4, 8};
  for (int t = 0; t < 3; ++t)
    EXPECT_EQ(select_j(config, t, {}), config.start_j_list[t]);
}

TEST(SelectJ, CyclesListWithoutEvidence) {
  SearchConfig config;
  config.start_j_list = {2, 4};
  EXPECT_EQ(select_j(config, 2, {}), 2);
  EXPECT_EQ(select_j(config, 3, {3}), 4);  // one best J is not enough
}

TEST(SelectJ, SamplesNearBestJs) {
  SearchConfig config;
  config.start_j_list = {2, 4, 8, 16};
  config.seed = 5;
  const std::vector<int> best = {6, 8, 7};
  std::set<int> seen;
  for (int t = 4; t < 40; ++t) {
    const int j = select_j(config, t, best);
    EXPECT_GE(j, 2);
    EXPECT_LE(j, 32);  // clamped to 2x max(start_j_list)
    seen.insert(j);
  }
  // The log-normal is centred near 7; most draws must land nearby.
  int close = 0;
  for (int t = 4; t < 40; ++t) {
    const int j = select_j(config, t, best);
    if (j >= 4 && j <= 14) ++close;
  }
  EXPECT_GT(close, 25);
  EXPECT_GT(seen.size(), 1u);  // it actually samples, not a constant
}

TEST(SelectJ, DeterministicInSeedAndTry) {
  SearchConfig config;
  config.seed = 11;
  const std::vector<int> best = {4, 9};
  for (int t = 10; t < 15; ++t)
    EXPECT_EQ(select_j(config, t, best), select_j(config, t, best));
}

TEST(RunSearch, KeepsLeaderboardSortedAndBounded) {
  const data::LabeledDataset ld = data::paper_dataset(300, 1);
  const Model model = Model::default_model(ld.dataset);
  SearchConfig config;
  config.start_j_list = {2, 3, 4, 5, 6};
  config.max_tries = 5;
  config.keep_best = 2;
  config.em.max_cycles = 30;
  const SearchResult result = sequential_search(model, config);
  EXPECT_EQ(result.tries, 5);
  EXPECT_LE(result.best.size(), 2u);
  for (std::size_t i = 1; i < result.best.size(); ++i)
    EXPECT_GE(score_of(result.best[i - 1].classification, config.score),
              score_of(result.best[i].classification, config.score));
  EXPECT_GT(result.total_cycles, 0);
}

TEST(RunSearch, DuplicateEliminationCountsRepeats) {
  // A runner returning the same classification every time: all but the
  // first try must be flagged as duplicates.
  const data::LabeledDataset ld = data::paper_dataset(200, 2);
  const Model model = Model::default_model(ld.dataset);
  SearchConfig config;
  config.max_tries = 4;
  config.start_j_list = {3};

  Reducer identity;
  EmWorker worker(model, data::ItemRange{0, 200}, identity);
  Classification fixed(model, 3);
  worker.random_init(fixed, 1, 0, config.em);
  worker.converge(fixed, config.em);

  const TryRunner constant_runner = [&](int, int) {
    return TryResult{fixed};
  };
  const SearchResult result = run_search(model, config, constant_runner);
  EXPECT_EQ(result.duplicates, 3);
  EXPECT_EQ(result.best.size(), 1u);
}

TEST(RunSearch, ClassCountAdaptsToData) {
  // Three well-separated clusters: starting from J in {2,...,8} the search
  // must settle on exactly 3 classes.
  const std::vector<data::GaussianComponent> mix = {
      {0.34, {0.0}, {0.5}}, {0.33, {20.0}, {0.5}}, {0.33, {-20.0}, {0.5}}};
  const data::LabeledDataset ld = data::gaussian_mixture(mix, 1500, 3);
  const Model model = Model::default_model(ld.dataset);
  SearchConfig config;
  config.start_j_list = {2, 3, 5, 8};
  config.max_tries = 4;
  config.em.max_cycles = 80;
  const SearchResult result = sequential_search(model, config);
  EXPECT_EQ(result.top().num_classes(), 3u);
  const auto labels = assign_labels(result.top());
  EXPECT_GT(data::adjusted_rand_index(ld.labels, labels), 0.95);
}

TEST(RunSearch, OverfittedStartsGetPrunedDown) {
  const std::vector<data::GaussianComponent> mix = {
      {0.5, {0.0}, {1.0}}, {0.5, {15.0}, {1.0}}};
  const data::LabeledDataset ld = data::gaussian_mixture(mix, 800, 4);
  const Model model = Model::default_model(ld.dataset);
  SearchConfig config;
  config.start_j_list = {16};
  config.max_tries = 1;
  config.em.max_cycles = 100;
  const SearchResult result = sequential_search(model, config);
  EXPECT_LT(result.top().num_classes(), 16u);
  EXPECT_EQ(result.best.front().classification.initial_classes, 16);
}

TEST(RunSearch, BicAndCsUsuallyAgreeOnEasyData) {
  const std::vector<data::GaussianComponent> mix = {
      {0.5, {0.0}, {0.5}}, {0.5, {30.0}, {0.5}}};
  const data::LabeledDataset ld = data::gaussian_mixture(mix, 600, 5);
  const Model model = Model::default_model(ld.dataset);
  SearchConfig config;
  config.start_j_list = {2, 4};
  config.max_tries = 2;
  config.em.max_cycles = 60;
  config.score = ScoreKind::kCheesemanStutz;
  const SearchResult cs = sequential_search(model, config);
  config.score = ScoreKind::kBic;
  const SearchResult bic = sequential_search(model, config);
  EXPECT_EQ(cs.top().num_classes(), bic.top().num_classes());
}

TEST(RunSearch, ClassesSortedByWeightInResults) {
  const data::LabeledDataset ld = data::paper_dataset(500, 6);
  const Model model = Model::default_model(ld.dataset);
  SearchConfig config;
  config.start_j_list = {5};
  config.max_tries = 1;
  config.em.max_cycles = 60;
  const SearchResult result = sequential_search(model, config);
  const Classification& top = result.top();
  for (std::size_t j = 1; j < top.num_classes(); ++j)
    EXPECT_GE(top.weight(j - 1), top.weight(j));
}

TEST(RunSearch, ValidatesConfig) {
  const data::LabeledDataset ld = data::paper_dataset(50, 7);
  const Model model = Model::default_model(ld.dataset);
  SearchConfig config;
  config.max_tries = 0;
  EXPECT_THROW(sequential_search(model, config), pac::Error);
  config.max_tries = 1;
  config.keep_best = 0;
  EXPECT_THROW(sequential_search(model, config), pac::Error);
}

TEST(RunSearch, TopThrowsOnEmptyResult) {
  const SearchResult empty;
  EXPECT_THROW(empty.top(), pac::Error);
}

TEST(RunSearch, PatienceStopsStaleSearches) {
  // A constant runner: after the first kept try, everything is a duplicate,
  // so patience = 2 must stop the loop after 2 more tries.
  const data::LabeledDataset ld = data::paper_dataset(200, 11);
  const Model model = Model::default_model(ld.dataset);
  SearchConfig config;
  config.max_tries = 50;
  config.patience = 2;
  config.start_j_list = {3};

  Reducer identity;
  EmWorker worker(model, data::ItemRange{0, 200}, identity);
  Classification fixed(model, 3);
  worker.random_init(fixed, 1, 0, config.em);
  worker.converge(fixed, config.em);
  const TryRunner constant_runner = [&](int, int) {
    return TryResult{fixed};
  };
  const SearchResult result = run_search(model, config, constant_runner);
  EXPECT_EQ(result.tries, 3);  // 1 kept + 2 stale
  EXPECT_EQ(result.duplicates, 2);
}

TEST(RunSearch, CycleBudgetStopsSearch) {
  const data::LabeledDataset ld = data::paper_dataset(400, 12);
  const Model model = Model::default_model(ld.dataset);
  SearchConfig config;
  config.start_j_list = {2, 4, 8, 16};
  config.max_tries = 4;
  config.em.max_cycles = 30;
  config.max_total_cycles = 1;  // exhausted after the first try
  const SearchResult result = sequential_search(model, config);
  EXPECT_EQ(result.tries, 1);
  EXPECT_GE(result.total_cycles, 1);
}

TEST(RunSearch, ZeroPatienceNeverStopsEarly) {
  const data::LabeledDataset ld = data::paper_dataset(200, 13);
  const Model model = Model::default_model(ld.dataset);
  SearchConfig config;
  config.start_j_list = {2, 3};
  config.max_tries = 4;
  config.patience = 0;
  config.em.max_cycles = 15;
  const SearchResult result = sequential_search(model, config);
  EXPECT_EQ(result.tries, 4);
}

TEST(CorrelatedModel, BuildsOneBlockPlusMultinomials) {
  std::vector<data::MixedComponent> mix(1);
  mix[0] = {1.0, {0.0, 1.0, 2.0}, {1.0, 1.0, 1.0}, {{0.5, 0.5}}};
  const data::LabeledDataset ld = data::mixed_mixture(mix, 100, 14);
  const Model model = Model::correlated_model(ld.dataset);
  ASSERT_EQ(model.num_terms(), 2u);
  // Terms: one multinomial (attr 3) and one 3-attribute multi_normal block.
  bool saw_block = false, saw_multinomial = false;
  for (std::size_t t = 0; t < model.num_terms(); ++t) {
    if (model.term(t).spec().kind == TermKind::kMultiNormal) {
      saw_block = true;
      EXPECT_EQ(model.term(t).num_attributes(), 3u);
    }
    if (model.term(t).spec().kind == TermKind::kSingleMultinomial)
      saw_multinomial = true;
  }
  EXPECT_TRUE(saw_block);
  EXPECT_TRUE(saw_multinomial);
}

TEST(CorrelatedModel, SingleRealFallsBackToSingleNormal) {
  std::vector<data::GaussianComponent> mix = {{1.0, {0.0}, {1.0}}};
  const data::LabeledDataset ld = data::gaussian_mixture(mix, 50, 15);
  const Model model = Model::correlated_model(ld.dataset);
  ASSERT_EQ(model.num_terms(), 1u);
  EXPECT_EQ(model.term(0).spec().kind, TermKind::kSingleNormal);
}

TEST(CorrelatedModel, BeatsIndependentModelOnCorrelatedData) {
  const double r = 0.95;
  const std::vector<data::CorrelatedComponent> mix = {
      {1.0, {0.0, 0.0}, {1.0, 0.0, r, std::sqrt(1 - r * r)}}};
  const data::LabeledDataset ld = data::correlated_mixture(mix, 2000, 16);
  SearchConfig config;
  config.start_j_list = {1};
  config.max_tries = 1;
  config.em.max_cycles = 20;
  const Model independent = Model::default_model(ld.dataset);
  const Model correlated = Model::correlated_model(ld.dataset);
  const double score_ind =
      sequential_search(independent, config).top().cs_score;
  const double score_cor =
      sequential_search(correlated, config).top().cs_score;
  // Modeling the correlation captures ~half the entropy of the block.
  EXPECT_GT(score_cor, score_ind + 100.0);
}

TEST(Duplicates, DifferentJNeverDuplicates) {
  const data::LabeledDataset ld = data::paper_dataset(100, 8);
  const Model model = Model::default_model(ld.dataset);
  const Classification a(model, 3);
  const Classification b(model, 4);
  EXPECT_FALSE(a.is_duplicate_of(b, 1.0, 1.0));
}

TEST(Duplicates, WeightPermutationStillDuplicates) {
  const data::LabeledDataset ld = data::paper_dataset(100, 9);
  const Model model = Model::default_model(ld.dataset);
  Classification a(model, 2), b(model, 2);
  a.mutable_weights()[0] = 70.0;
  a.mutable_weights()[1] = 30.0;
  b.mutable_weights()[0] = 30.0;
  b.mutable_weights()[1] = 70.0;
  a.cs_score = b.cs_score = -500.0;
  EXPECT_TRUE(a.is_duplicate_of(b, 1e-4, 1e-3));
}

TEST(Duplicates, ScoreGapBreaksDuplicate) {
  const data::LabeledDataset ld = data::paper_dataset(100, 10);
  const Model model = Model::default_model(ld.dataset);
  Classification a(model, 2), b(model, 2);
  a.cs_score = -500.0;
  b.cs_score = -600.0;
  EXPECT_FALSE(a.is_duplicate_of(b, 1e-4, 1e-3));
}

TEST(Duplicates, RelationIsSymmetric) {
  // The score tolerance used to scale with |this->cs_score| only, so for
  // scores of different magnitude (possible when they straddle zero)
  // a.is_duplicate_of(b) could disagree with b.is_duplicate_of(a) — fatal
  // for a merge rule that must not depend on comparison order.
  const data::LabeledDataset ld = data::paper_dataset(100, 21);
  const Model model = Model::default_model(ld.dataset);
  Classification a(model, 2), b(model, 2);
  a.mutable_weights()[0] = b.mutable_weights()[0] = 60.0;
  a.mutable_weights()[1] = b.mutable_weights()[1] = 40.0;
  // |a - b| = 1.0 sits between 0.7*(1+0.1) and 0.7*(1+0.9): the old
  // asymmetric scaling called this a duplicate from a's side only.
  a.cs_score = 0.9;
  b.cs_score = -0.1;
  EXPECT_EQ(a.is_duplicate_of(b, 0.7, 1e-3), b.is_duplicate_of(a, 0.7, 1e-3));
  EXPECT_TRUE(a.is_duplicate_of(b, 0.7, 1e-3));  // max-magnitude scaling
  // Property over a grid of score pairs and tolerances.
  const double scores[] = {-1000.0, -1000.05, -0.5, 0.0, 0.4, 0.9, 1000.0};
  for (const double sa : scores)
    for (const double sb : scores)
      for (const double tol : {1e-4, 1e-2, 0.7}) {
        a.cs_score = sa;
        b.cs_score = sb;
        EXPECT_EQ(a.is_duplicate_of(b, tol, 1e-3),
                  b.is_duplicate_of(a, tol, 1e-3))
            << "asymmetric at scores " << sa << " / " << sb << ", tol "
            << tol;
      }
}

TEST(Duplicates, NonPositiveWeightTotalsAreNotComparable) {
  // Two classifications whose weights sum to <= 0 carry no share
  // information; they used to be declared duplicates of *everything* with
  // a close score, which silently dropped real tries.
  const data::LabeledDataset ld = data::paper_dataset(100, 22);
  const Model model = Model::default_model(ld.dataset);
  Classification a(model, 2), b(model, 2);  // weights default to zero
  a.cs_score = b.cs_score = -500.0;
  EXPECT_FALSE(a.is_duplicate_of(b, 1.0, 1.0));
  EXPECT_FALSE(b.is_duplicate_of(a, 1.0, 1.0));
  // One degenerate side is just as non-comparable.
  b.mutable_weights()[0] = 60.0;
  b.mutable_weights()[1] = 40.0;
  EXPECT_FALSE(a.is_duplicate_of(b, 1.0, 1.0));
  EXPECT_FALSE(b.is_duplicate_of(a, 1.0, 1.0));
}

/// Runner returning synthetic non-duplicate classifications with a fixed
/// modeled cycle count per try (for budget arithmetic tests).
TryRunner fixed_cycle_runner(const Model& model, int cycles_per_try) {
  return [&model, cycles_per_try](int t, int) {
    Classification c(model, 2);
    c.mutable_weights()[0] = 60.0;
    c.mutable_weights()[1] = 40.0;
    c.cs_score = -500.0 - t;  // distinct scores: never duplicates
    c.cycles = cycles_per_try;
    return TryResult{std::move(c)};
  };
}

TEST(RunSearch, CycleBudgetOvershootReported) {
  const data::LabeledDataset ld = data::paper_dataset(50, 23);
  const Model model = Model::default_model(ld.dataset);
  SearchConfig config;
  config.start_j_list = {2};
  config.max_tries = 50;
  config.max_total_cycles = 100;
  // 30 cycles per try: the budget is crossed DURING try 4 (120 >= 100).
  // The post-accumulation check must stop there and report the overshoot
  // instead of letting the loop schedule try 5 off a stale pre-check.
  const SearchResult result =
      run_search(model, config, fixed_cycle_runner(model, 30));
  EXPECT_EQ(result.tries, 4);
  EXPECT_EQ(result.total_cycles, 120);
  EXPECT_EQ(result.cycle_overshoot, 20);
}

TEST(RunSearch, NoOvershootWithoutBudget) {
  const data::LabeledDataset ld = data::paper_dataset(50, 24);
  const Model model = Model::default_model(ld.dataset);
  SearchConfig config;
  config.start_j_list = {2};
  config.max_tries = 3;
  const SearchResult result =
      run_search(model, config, fixed_cycle_runner(model, 30));
  EXPECT_EQ(result.tries, 3);
  EXPECT_EQ(result.cycle_overshoot, 0);
}

/// Seed state holding one converged classification at try 0.
SearchResult seeded_state(const Model& model, const Classification& fixed) {
  SearchResult seed;
  seed.tries = 1;
  seed.total_cycles = fixed.cycles;
  TryResult entry{Classification(fixed)};
  entry.try_index = 0;
  entry.j_requested = static_cast<int>(fixed.num_classes());
  entry.converged = true;
  seed.best.push_back(std::move(entry));
  return seed;
}

TEST(RunSearchFrom, AllDuplicateContinuationKeepsSeedBoard) {
  // Resume from a leaderboard whose continuation tries are ALL duplicates:
  // the seeded board must survive (the PAC_CHECK non-empty invariant holds
  // because the seed entries count), and every continued try is counted as
  // a duplicate.
  const data::LabeledDataset ld = data::paper_dataset(200, 25);
  const Model model = Model::default_model(ld.dataset);
  SearchConfig config;
  config.max_tries = 5;
  config.start_j_list = {3};

  Reducer identity;
  EmWorker worker(model, data::ItemRange{0, 200}, identity);
  Classification fixed(model, 3);
  worker.random_init(fixed, 1, 0, config.em);
  worker.converge(fixed, config.em);
  const TryRunner constant_runner = [&](int, int) {
    return TryResult{Classification(fixed)};
  };

  const SearchResult result = run_search_from(
      model, config, constant_runner, seeded_state(model, fixed));
  EXPECT_EQ(result.tries, 5);       // 1 seeded + 4 continued
  EXPECT_EQ(result.duplicates, 4);  // every continued try
  ASSERT_EQ(result.best.size(), 1u);
  EXPECT_EQ(result.best.front().try_index, 0);  // the seed entry survived
}

TEST(RunSearchFrom, PatienceCountsDuplicateContinuations) {
  // Same all-duplicate continuation, but patience = 2 stops the resumed
  // search after two stale tries instead of exhausting max_tries.
  const data::LabeledDataset ld = data::paper_dataset(200, 26);
  const Model model = Model::default_model(ld.dataset);
  SearchConfig config;
  config.max_tries = 50;
  config.patience = 2;
  config.start_j_list = {3};

  Reducer identity;
  EmWorker worker(model, data::ItemRange{0, 200}, identity);
  Classification fixed(model, 3);
  worker.random_init(fixed, 1, 0, config.em);
  worker.converge(fixed, config.em);
  const TryRunner constant_runner = [&](int, int) {
    return TryResult{Classification(fixed)};
  };

  const SearchResult result = run_search_from(
      model, config, constant_runner, seeded_state(model, fixed));
  EXPECT_EQ(result.tries, 3);  // 1 seeded + 2 stale continuations
  EXPECT_EQ(result.duplicates, 2);
  ASSERT_EQ(result.best.size(), 1u);
}

TEST(ScheduledJ, WalksStartListThenSamplesFromIt) {
  SearchConfig config;
  config.start_j_list = {2, 4, 8};
  config.seed = 5;
  for (int t = 0; t < 3; ++t)
    EXPECT_EQ(scheduled_j(config, t), config.start_j_list[t]);
  for (int t = 3; t < 40; ++t) {
    const int j = scheduled_j(config, t);
    EXPECT_GE(j, 2);
    EXPECT_LE(j, 16);  // clamped to 2x max(start_j_list)
    // Pure function of (config, t): no leaderboard feedback, so a
    // sub-world can compute its slice without seeing the other tries.
    EXPECT_EQ(j, scheduled_j(config, t));
    EXPECT_EQ(j, select_j(config, t, config.start_j_list));
  }
}

/// A board entry with the given score/try/J for merge tests (J implied by
/// the weight count).
TryResult entry_for(const Model& model, double score, int try_index,
                    std::vector<double> weights) {
  Classification c(model, weights.size());
  for (std::size_t j = 0; j < weights.size(); ++j)
    c.mutable_weights()[j] = weights[j];
  c.cs_score = score;
  TryResult e{std::move(c)};
  e.try_index = try_index;
  e.j_requested = static_cast<int>(weights.size());
  return e;
}

TEST(MergeLeaderboards, OrderInvariantDeduplicatedAndTruncated) {
  const data::LabeledDataset ld = data::paper_dataset(100, 27);
  const Model model = Model::default_model(ld.dataset);
  SearchConfig config;
  config.keep_best = 2;
  struct Spec {
    double score;
    int try_index;
    std::vector<double> weights;
  };
  std::vector<Spec> specs = {
      {-500.0, 0, {60.0, 40.0}},
      {-500.0, 3, {60.0, 40.0}},  // duplicate of try 0
      {-520.0, 1, {80.0, 20.0}},
      {-530.0, 2, {50.0, 50.0}},  // non-duplicate, beyond keep_best
  };
  for (int rot = 0; rot < 4; ++rot) {
    std::rotate(specs.begin(), specs.begin() + 1, specs.end());
    std::vector<TryResult> entries;
    for (const Spec& s : specs)
      entries.push_back(entry_for(model, s.score, s.try_index, s.weights));
    const MergedLeaderboard merged =
        merge_leaderboards(config, std::move(entries));
    ASSERT_EQ(merged.best.size(), 2u);
    EXPECT_EQ(merged.best[0].try_index, 0);  // score tie broken by try index
    EXPECT_EQ(merged.best[1].try_index, 1);
    EXPECT_EQ(merged.duplicates, 1);  // try 3 eliminated, try 2 truncated
  }
}

TEST(MergeLeaderboards, EqualScoresKeepLowestTryIndexFirst) {
  const data::LabeledDataset ld = data::paper_dataset(100, 28);
  const Model model = Model::default_model(ld.dataset);
  SearchConfig config;
  config.keep_best = 3;
  std::vector<TryResult> entries;
  // Same score, different class counts: never duplicates of each other.
  entries.push_back(entry_for(model, -500.0, 5, {60.0, 40.0}));
  entries.push_back(entry_for(model, -500.0, 2, {50.0, 30.0, 20.0}));
  const MergedLeaderboard merged =
      merge_leaderboards(config, std::move(entries));
  ASSERT_EQ(merged.best.size(), 2u);
  EXPECT_EQ(merged.best[0].try_index, 2);
  EXPECT_EQ(merged.best[1].try_index, 5);
  EXPECT_EQ(merged.duplicates, 0);
}

}  // namespace
}  // namespace pac::ac
