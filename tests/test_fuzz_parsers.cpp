// Robustness ("fuzz-ish") tests: every parser in the repo must respond to
// malformed input with a pac::Error — never a crash, hang, or silent
// garbage acceptance.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "autoclass/checkpoint.hpp"
#include "autoclass/search.hpp"
#include "data/io.hpp"
#include "data/synth.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace pac {
namespace {

/// Random printable garbage of a given length.
std::string garbage(std::uint64_t seed, std::size_t length) {
  Xoshiro256ss rng(seed);
  std::string out;
  out.reserve(length);
  const std::string alphabet =
      "abcdefghijklmnopqrstuvwxyz0123456789 .,-?#\n\t";
  for (std::size_t i = 0; i < length; ++i)
    out.push_back(alphabet[uniform_index(rng, alphabet.size())]);
  return out;
}

/// Truncate a valid document at a random point.
std::string truncate_at(const std::string& valid, std::uint64_t seed) {
  Xoshiro256ss rng(seed);
  const std::size_t cut = 1 + uniform_index(rng, valid.size() - 1);
  return valid.substr(0, cut);
}

class FuzzSeed : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSeed, HeaderParserNeverCrashes) {
  const std::uint64_t seed = GetParam();
  for (std::size_t length : {1u, 16u, 256u, 4096u}) {
    std::istringstream in(garbage(seed * 31 + length, length));
    try {
      (void)data::read_header(in);
    } catch (const Error&) {
      // expected for almost all inputs
    }
  }
}

TEST_P(FuzzSeed, DataParserNeverCrashes) {
  const std::uint64_t seed = GetParam();
  const data::Schema schema({data::Attribute::real("x", 0.1),
                             data::Attribute::discrete("c", 3)});
  for (std::size_t length : {1u, 64u, 1024u}) {
    std::istringstream in(garbage(seed * 37 + length, length));
    try {
      (void)data::read_data(in, schema);
    } catch (const Error&) {
    }
  }
}

TEST_P(FuzzSeed, CheckpointParserNeverCrashes) {
  const std::uint64_t seed = GetParam();
  const data::LabeledDataset ld = data::paper_dataset(30, 1);
  const ac::Model model = ac::Model::default_model(ld.dataset);
  for (std::size_t length : {8u, 128u, 2048u}) {
    std::istringstream in(garbage(seed * 41 + length, length));
    try {
      (void)ac::load_classification(in, model);
    } catch (const Error&) {
    }
    std::istringstream in2(garbage(seed * 43 + length, length));
    try {
      (void)ac::load_search_result(in2, model);
    } catch (const Error&) {
    }
  }
}

TEST_P(FuzzSeed, TruncatedCheckpointAlwaysThrows) {
  const std::uint64_t seed = GetParam();
  const data::LabeledDataset ld = data::paper_dataset(60, 2);
  const ac::Model model = ac::Model::default_model(ld.dataset);
  ac::SearchConfig config;
  config.start_j_list = {2};
  config.max_tries = 1;
  config.em.max_cycles = 8;
  const ac::SearchResult result = ac::sequential_search(model, config);
  std::ostringstream os;
  ac::save_search_result(os, result);
  const std::string valid = os.str();
  for (int variant = 0; variant < 5; ++variant) {
    std::istringstream in(truncate_at(valid, seed * 100 + variant));
    EXPECT_THROW((void)ac::load_search_result(in, model), Error);
  }
}

TEST_P(FuzzSeed, MutatedHeaderEitherParsesOrThrows) {
  const std::uint64_t seed = GetParam();
  std::string valid =
      "real height error 0.5\ndiscrete color range 4\nreal weight\n";
  Xoshiro256ss rng(seed);
  // Flip a handful of characters; the result must parse or throw cleanly.
  for (int round = 0; round < 20; ++round) {
    std::string mutated = valid;
    const std::size_t pos = uniform_index(rng, mutated.size());
    mutated[pos] = static_cast<char>('0' + uniform_index(rng, 75));
    std::istringstream in(mutated);
    try {
      const data::Schema schema = data::read_header(in);
      EXPECT_GE(schema.size(), 1u);  // if it parsed, it is structurally sane
    } catch (const Error&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeed,
                         ::testing::Values(11u, 23u, 47u, 89u, 131u));

}  // namespace
}  // namespace pac
