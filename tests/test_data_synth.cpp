// Tests for the synthetic generators and the clustering-quality metrics.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "data/synth.hpp"
#include "util/error.hpp"

namespace pac::data {
namespace {

TEST(GaussianMixture, ShapesAndLabels) {
  const std::vector<GaussianComponent> mix = {
      {0.5, {0.0, 0.0}, {1.0, 1.0}},
      {0.5, {10.0, 10.0}, {1.0, 1.0}},
  };
  const LabeledDataset d = gaussian_mixture(mix, 500, 1);
  EXPECT_EQ(d.dataset.num_items(), 500u);
  EXPECT_EQ(d.dataset.num_attributes(), 2u);
  ASSERT_EQ(d.labels.size(), 500u);
  for (const auto l : d.labels) EXPECT_TRUE(l == 0 || l == 1);
}

TEST(GaussianMixture, ComponentMomentsMatch) {
  const std::vector<GaussianComponent> mix = {
      {1.0, {3.0}, {2.0}},
  };
  const LabeledDataset d = gaussian_mixture(mix, 20000, 2);
  const auto stats = d.dataset.real_stats(0);
  EXPECT_NEAR(stats.mean, 3.0, 0.06);
  EXPECT_NEAR(std::sqrt(stats.variance), 2.0, 0.05);
}

TEST(GaussianMixture, WeightsControlProportions) {
  const std::vector<GaussianComponent> mix = {
      {0.8, {0.0}, {1.0}},
      {0.2, {100.0}, {1.0}},
  };
  const LabeledDataset d = gaussian_mixture(mix, 20000, 3);
  const double share0 =
      static_cast<double>(std::count(d.labels.begin(), d.labels.end(), 0)) /
      20000.0;
  EXPECT_NEAR(share0, 0.8, 0.02);
}

TEST(GaussianMixture, Reproducible) {
  const std::vector<GaussianComponent> mix = {{1.0, {0.0}, {1.0}}};
  const LabeledDataset a = gaussian_mixture(mix, 100, 7);
  const LabeledDataset b = gaussian_mixture(mix, 100, 7);
  for (std::size_t i = 0; i < 100; ++i)
    EXPECT_DOUBLE_EQ(a.dataset.real_value(i, 0), b.dataset.real_value(i, 0));
}

TEST(GaussianMixture, ValidatesInput) {
  EXPECT_THROW(gaussian_mixture({}, 10, 1), pac::Error);
  const std::vector<GaussianComponent> bad_sigma = {{1.0, {0.0}, {-1.0}}};
  EXPECT_THROW(gaussian_mixture(bad_sigma, 10, 1), pac::Error);
  const std::vector<GaussianComponent> mismatched = {
      {1.0, {0.0, 1.0}, {1.0}}};
  EXPECT_THROW(gaussian_mixture(mismatched, 10, 1), pac::Error);
}

TEST(CorrelatedMixture, ProducesRequestedCorrelation) {
  // Covariance [[1, .9], [.9, 1]] via its Cholesky factor.
  const double r = 0.9;
  const std::vector<CorrelatedComponent> mix = {
      {1.0, {0.0, 0.0}, {1.0, 0.0, r, std::sqrt(1 - r * r)}}};
  const LabeledDataset d = correlated_mixture(mix, 20000, 4);
  // Sample correlation of the two columns.
  const auto x = d.dataset.real_column(0);
  const auto y = d.dataset.real_column(1);
  double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
  const double n = 20000.0;
  for (std::size_t i = 0; i < 20000; ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    syy += y[i] * y[i];
    sxy += x[i] * y[i];
  }
  const double corr = (sxy - sx * sy / n) /
                      std::sqrt((sxx - sx * sx / n) * (syy - sy * sy / n));
  EXPECT_NEAR(corr, r, 0.01);
}

TEST(CategoricalMixture, FrequenciesMatchComponents) {
  const std::vector<CategoricalComponent> mix = {
      {1.0, {{0.7, 0.2, 0.1}}},
  };
  const LabeledDataset d = categorical_mixture(mix, 30000, 5);
  const auto f = d.dataset.discrete_frequencies(0);
  EXPECT_NEAR(f[0], 0.7, 0.01);
  EXPECT_NEAR(f[1], 0.2, 0.01);
  EXPECT_NEAR(f[2], 0.1, 0.01);
}

TEST(MixedMixture, SchemaHasBothKinds) {
  std::vector<MixedComponent> mix(1);
  mix[0] = {1.0, {0.0, 1.0}, {1.0, 1.0}, {{0.5, 0.5}, {0.3, 0.3, 0.4}}};
  const LabeledDataset d = mixed_mixture(mix, 100, 6);
  EXPECT_EQ(d.dataset.schema().num_real(), 2u);
  EXPECT_EQ(d.dataset.schema().num_discrete(), 2u);
  EXPECT_EQ(d.dataset.schema().at(3).num_values, 3);
}

TEST(PaperDataset, TwoRealAttributesAnySize) {
  for (std::size_t n : {100u, 5000u}) {
    const LabeledDataset d = paper_dataset(n);
    EXPECT_EQ(d.dataset.num_items(), n);
    EXPECT_EQ(d.dataset.num_attributes(), 2u);
    EXPECT_EQ(d.dataset.schema().num_real(), 2u);
  }
}

TEST(PaperDataset, HasFiveComponents) {
  const LabeledDataset d = paper_dataset(5000);
  const auto max_label = *std::max_element(d.labels.begin(), d.labels.end());
  EXPECT_EQ(max_label, 4);
}

TEST(InjectMissing, FractionIsRespected) {
  LabeledDataset d = paper_dataset(5000, 11);
  inject_missing(d.dataset, 0.2, 12);
  const double frac =
      static_cast<double>(d.dataset.missing_count(0) +
                          d.dataset.missing_count(1)) /
      (2.0 * 5000.0);
  EXPECT_NEAR(frac, 0.2, 0.02);
}

TEST(InjectMissing, ZeroFractionIsNoOp) {
  LabeledDataset d = paper_dataset(100, 13);
  inject_missing(d.dataset, 0.0, 14);
  EXPECT_EQ(d.dataset.missing_count(0), 0u);
}

TEST(InjectOutliers, MarksLabelsAndStaysFinite) {
  LabeledDataset d = paper_dataset(2000, 15);
  inject_outliers(d, 0.1, 3.0, 16);
  const auto outliers =
      std::count(d.labels.begin(), d.labels.end(), -1);
  EXPECT_NEAR(static_cast<double>(outliers) / 2000.0, 0.1, 0.03);
  for (std::size_t i = 0; i < 2000; ++i)
    EXPECT_TRUE(std::isfinite(d.dataset.real_value(i, 0)));
}

// ---- adjusted Rand index ----

TEST(Ari, IdenticalPartitionsScoreOne) {
  const std::vector<std::int32_t> a = {0, 0, 1, 1, 2, 2};
  EXPECT_DOUBLE_EQ(adjusted_rand_index(a, a), 1.0);
}

TEST(Ari, RelabelingInvariance) {
  const std::vector<std::int32_t> a = {0, 0, 1, 1, 2, 2};
  const std::vector<std::int32_t> b = {5, 5, 9, 9, 1, 1};
  EXPECT_DOUBLE_EQ(adjusted_rand_index(a, b), 1.0);
}

TEST(Ari, CompleteDisagreementScoresLow) {
  // Predicted lumps everything into one class.
  const std::vector<std::int32_t> truth = {0, 0, 0, 1, 1, 1, 2, 2, 2};
  const std::vector<std::int32_t> one(9, 0);
  EXPECT_LE(adjusted_rand_index(truth, one), 0.0 + 1e-12);
}

TEST(Ari, SkipsNegativeTruthLabels) {
  const std::vector<std::int32_t> truth = {0, 0, -1, 1, 1, -1};
  const std::vector<std::int32_t> pred = {3, 3, 7, 4, 4, 9};
  EXPECT_DOUBLE_EQ(adjusted_rand_index(truth, pred), 1.0);
}

TEST(Ari, PartialAgreementIsBetweenZeroAndOne) {
  const std::vector<std::int32_t> truth = {0, 0, 0, 0, 1, 1, 1, 1};
  const std::vector<std::int32_t> pred = {0, 0, 0, 1, 1, 1, 1, 1};
  const double ari = adjusted_rand_index(truth, pred);
  EXPECT_GT(ari, 0.0);
  EXPECT_LT(ari, 1.0);
}

TEST(Ari, SizeMismatchThrows) {
  EXPECT_THROW(adjusted_rand_index({0, 1}, {0}), pac::Error);
}

// ---- confusion matrix & purity ----

TEST(Confusion, CountsCells) {
  const std::vector<std::int32_t> truth = {0, 0, 1, 1, 1};
  const std::vector<std::int32_t> pred = {0, 1, 1, 1, 0};
  const ConfusionMatrix m = confusion_matrix(truth, pred);
  ASSERT_EQ(m.rows, 2u);
  ASSERT_EQ(m.cols, 2u);
  EXPECT_EQ(m.at(0, 0), 1u);
  EXPECT_EQ(m.at(0, 1), 1u);
  EXPECT_EQ(m.at(1, 0), 1u);
  EXPECT_EQ(m.at(1, 1), 2u);
}

TEST(Confusion, SkipsNegativeTruth) {
  const std::vector<std::int32_t> truth = {-1, 0, -1, 1};
  const std::vector<std::int32_t> pred = {5, 0, 7, 1};
  const ConfusionMatrix m = confusion_matrix(truth, pred);
  EXPECT_EQ(m.rows, 2u);
  std::size_t total = 0;
  for (const auto c : m.counts) total += c;
  EXPECT_EQ(total, 2u);
}

TEST(Confusion, RectangularWhenClusterCountsDiffer) {
  const std::vector<std::int32_t> truth = {0, 1, 2};
  const std::vector<std::int32_t> pred = {0, 0, 1};
  const ConfusionMatrix m = confusion_matrix(truth, pred);
  EXPECT_EQ(m.rows, 3u);
  EXPECT_EQ(m.cols, 2u);
}

TEST(Purity, PerfectClusteringIsOne) {
  const std::vector<std::int32_t> truth = {0, 0, 1, 1};
  const std::vector<std::int32_t> pred = {7, 7, 3, 3};
  EXPECT_DOUBLE_EQ(cluster_purity(truth, pred), 1.0);
}

TEST(Purity, SingleClusterGivesMajorityShare) {
  const std::vector<std::int32_t> truth = {0, 0, 0, 1, 1};
  const std::vector<std::int32_t> pred(5, 0);
  EXPECT_DOUBLE_EQ(cluster_purity(truth, pred), 0.6);
}

TEST(Purity, OverSplittingDoesNotHurtPurity) {
  // Splitting a true class into two clusters keeps purity at 1.
  const std::vector<std::int32_t> truth = {0, 0, 0, 0};
  const std::vector<std::int32_t> pred = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(cluster_purity(truth, pred), 1.0);
}

}  // namespace
}  // namespace pac::data
