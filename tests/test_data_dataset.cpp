// Tests for Schema, Dataset storage, column statistics, and partitioners.
#include <gtest/gtest.h>

#include "data/dataset.hpp"
#include "util/error.hpp"

namespace pac::data {
namespace {

Schema two_attr_schema() {
  return Schema({Attribute::real("x", 0.01), Attribute::discrete("c", 3)});
}

TEST(Attribute, FactoriesValidate) {
  EXPECT_NO_THROW(Attribute::real("x", 0.5));
  EXPECT_THROW(Attribute::real("x", 0.0), pac::Error);
  EXPECT_NO_THROW(Attribute::discrete("c", 2));
  EXPECT_THROW(Attribute::discrete("c", 1), pac::Error);
}

TEST(Schema, BasicAccessors) {
  const Schema s = two_attr_schema();
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.num_real(), 1u);
  EXPECT_EQ(s.num_discrete(), 1u);
  EXPECT_EQ(s.at(0).name, "x");
  EXPECT_EQ(s.index_of("c"), 1u);
  EXPECT_THROW(s.index_of("nope"), pac::Error);
  EXPECT_THROW(s.at(2), pac::Error);
}

TEST(Schema, EqualityComparesStructure) {
  EXPECT_TRUE(two_attr_schema() == two_attr_schema());
  const Schema other({Attribute::real("x", 0.01)});
  EXPECT_FALSE(two_attr_schema() == other);
}

TEST(Schema, RejectsEmptyNames) {
  EXPECT_THROW(Schema({Attribute::real("", 0.1)}), pac::Error);
}

TEST(Dataset, StartsAllMissing) {
  const Dataset d(two_attr_schema(), 5);
  EXPECT_EQ(d.num_items(), 5u);
  EXPECT_EQ(d.num_attributes(), 2u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_TRUE(d.is_missing(i, 0));
    EXPECT_TRUE(d.is_missing(i, 1));
  }
  EXPECT_EQ(d.missing_count(0), 5u);
}

TEST(Dataset, SetAndGetValues) {
  Dataset d(two_attr_schema(), 3);
  d.set_real(0, 0, 1.5);
  d.set_discrete(0, 1, 2);
  EXPECT_DOUBLE_EQ(d.real_value(0, 0), 1.5);
  EXPECT_EQ(d.discrete_value(0, 1), 2);
  EXPECT_FALSE(d.is_missing(0, 0));
  EXPECT_FALSE(d.is_missing(0, 1));
  d.set_missing(0, 0);
  d.set_missing(0, 1);
  EXPECT_TRUE(d.is_missing(0, 0));
  EXPECT_TRUE(d.is_missing(0, 1));
}

TEST(Dataset, TypeAndRangeChecks) {
  Dataset d(two_attr_schema(), 3);
  EXPECT_THROW(d.set_real(0, 1, 1.0), pac::Error);      // attr 1 is discrete
  EXPECT_THROW(d.set_discrete(0, 0, 1), pac::Error);    // attr 0 is real
  EXPECT_THROW(d.set_discrete(0, 1, 3), pac::Error);    // out of range
  EXPECT_THROW(d.set_discrete(0, 1, -2), pac::Error);
  EXPECT_THROW(d.set_real(5, 0, 1.0), pac::Error);      // item out of range
  EXPECT_THROW(d.real_value(0, 9), pac::Error);
}

TEST(Dataset, ColumnsAreContiguousViews) {
  Dataset d(two_attr_schema(), 4);
  for (std::size_t i = 0; i < 4; ++i) d.set_real(i, 0, i * 1.0);
  const auto col = d.real_column(0);
  ASSERT_EQ(col.size(), 4u);
  EXPECT_DOUBLE_EQ(col[3], 3.0);
  EXPECT_THROW(d.real_column(1), pac::Error);
  EXPECT_THROW(d.discrete_column(0), pac::Error);
}

TEST(Dataset, RealStatsSkipMissing) {
  Dataset d(two_attr_schema(), 5);
  d.set_real(0, 0, 2.0);
  d.set_real(1, 0, 4.0);
  d.set_real(2, 0, 6.0);
  // items 3, 4 stay missing
  const auto s = d.real_stats(0);
  EXPECT_EQ(s.known, 3u);
  EXPECT_DOUBLE_EQ(s.mean, 4.0);
  EXPECT_NEAR(s.variance, 8.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 6.0);
}

TEST(Dataset, RealStatsAllMissingIsZero) {
  const Dataset d(two_attr_schema(), 3);
  const auto s = d.real_stats(0);
  EXPECT_EQ(s.known, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.min, 0.0);
}

TEST(Dataset, DiscreteFrequencies) {
  Dataset d(two_attr_schema(), 4);
  d.set_discrete(0, 1, 0);
  d.set_discrete(1, 1, 0);
  d.set_discrete(2, 1, 2);
  // item 3 missing
  const auto f = d.discrete_frequencies(1);
  ASSERT_EQ(f.size(), 3u);
  EXPECT_NEAR(f[0], 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(f[1], 0.0, 1e-12);
  EXPECT_NEAR(f[2], 1.0 / 3.0, 1e-12);
}

TEST(Dataset, DiscreteFrequenciesAllMissingIsUniform) {
  const Dataset d(two_attr_schema(), 3);
  const auto f = d.discrete_frequencies(1);
  for (double v : f) EXPECT_NEAR(v, 1.0 / 3.0, 1e-12);
}

TEST(Dataset, SliceCopiesRows) {
  Dataset d(two_attr_schema(), 5);
  for (std::size_t i = 0; i < 5; ++i) {
    d.set_real(i, 0, static_cast<double>(i));
    d.set_discrete(i, 1, static_cast<std::int32_t>(i % 3));
  }
  const Dataset s = d.slice(1, 4);
  ASSERT_EQ(s.num_items(), 3u);
  EXPECT_DOUBLE_EQ(s.real_value(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(s.real_value(2, 0), 3.0);
  EXPECT_EQ(s.discrete_value(1, 1), 2);
  EXPECT_THROW(d.slice(3, 2), pac::Error);
  EXPECT_THROW(d.slice(0, 6), pac::Error);
}

// ---- partitioners ----

TEST(BlockPartition, CoversExactlyOnce) {
  for (std::size_t n : {0u, 1u, 7u, 100u, 101u, 12345u}) {
    for (int p : {1, 2, 3, 7, 10}) {
      std::size_t covered = 0;
      std::size_t previous_end = 0;
      for (int r = 0; r < p; ++r) {
        const ItemRange range = block_partition(n, p, r);
        EXPECT_EQ(range.begin, previous_end);
        previous_end = range.end;
        covered += range.size();
      }
      EXPECT_EQ(previous_end, n);
      EXPECT_EQ(covered, n);
    }
  }
}

TEST(BlockPartition, SizesDifferByAtMostOne) {
  for (std::size_t n : {10u, 11u, 99u, 100u}) {
    for (int p : {3, 7, 10}) {
      std::size_t lo = n, hi = 0;
      for (int r = 0; r < p; ++r) {
        const auto size = block_partition(n, p, r).size();
        lo = std::min(lo, size);
        hi = std::max(hi, size);
      }
      EXPECT_LE(hi - lo, 1u);
    }
  }
}

TEST(BlockPartition, FirstRanksGetTheExtras) {
  // 10 items over 3 ranks: 4, 3, 3.
  EXPECT_EQ(block_partition(10, 3, 0).size(), 4u);
  EXPECT_EQ(block_partition(10, 3, 1).size(), 3u);
  EXPECT_EQ(block_partition(10, 3, 2).size(), 3u);
}

TEST(BlockPartition, ValidatesArguments) {
  EXPECT_THROW(block_partition(10, 0, 0), pac::Error);
  EXPECT_THROW(block_partition(10, 2, 2), pac::Error);
  EXPECT_THROW(block_partition(10, 2, -1), pac::Error);
}

TEST(CyclicOwner, RoundRobins) {
  EXPECT_EQ(cyclic_owner(0, 4), 0);
  EXPECT_EQ(cyclic_owner(5, 4), 1);
  EXPECT_EQ(cyclic_owner(7, 4), 3);
}

TEST(ItemRange, SizeAndEmpty) {
  EXPECT_EQ((ItemRange{3, 7}).size(), 4u);
  EXPECT_TRUE((ItemRange{3, 3}).empty());
  EXPECT_FALSE((ItemRange{3, 4}).empty());
}

}  // namespace
}  // namespace pac::data
