// Kernel-layer tests: the batched Term::log_prob_batch E-step kernels and
// the Term::accumulate_batch M-step kernels must be *bit-identical* to
// their scalar oracles (the per-item virtual log_prob / accumulate chains)
// for every term family, with and without missing values — the determinism
// contract of DESIGN.md's kernel section.  The blocked EM drivers must in
// turn be invariant in the thread count (EmConfig::threads /
// PAC_EM_THREADS): per-block partials folded in block-index order make
// every trajectory a pure function of the block size.  Also covers the
// degenerate-row guard and the seed-item draw fallback fix.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <set>

#include "autoclass/em.hpp"
#include "autoclass/report.hpp"
#include "data/synth.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace pac::ac {
namespace {

using data::Attribute;
using data::Dataset;
using data::Schema;

void expect_bit_identical(std::span<const double> a,
                          std::span<const double> b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(double)), 0);
}

// ---- term-level: log_prob_batch vs the scalar log_prob oracle ----

/// Fit one class's parameters over the whole dataset (w = 1) so the batch
/// kernels are exercised at realistic parameter values.
std::vector<double> fit_term_params(const Term& term, std::size_t n) {
  std::vector<double> stats(term.stats_size(), 0.0);
  for (std::size_t i = 0; i < n; ++i) term.accumulate(i, 1.0, stats);
  std::vector<double> params(term.param_size(), 0.0);
  term.update_params(stats, params);
  return params;
}

/// Batch accumulation into a non-trivial base row, at stride 1 and a
/// strided layout, must match per-item scalar accumulation bit-for-bit.
void expect_term_batch_matches_scalar(const Model& model) {
  const std::size_t n = model.dataset().num_items();
  for (std::size_t t = 0; t < model.num_terms(); ++t) {
    const Term& term = model.term(t);
    const std::vector<double> params = fit_term_params(term, n);
    std::vector<double> scalar(n), batch(n);
    for (std::size_t i = 0; i < n; ++i)
      scalar[i] = batch[i] = -0.25 * static_cast<double>(i % 7);
    for (std::size_t i = 0; i < n; ++i)
      scalar[i] += term.log_prob(i, params);
    term.log_prob_batch(data::ItemRange{0, n}, params, batch.data(), 1);
    expect_bit_identical(batch, scalar);

    // Strided (one class-column of a J=3 row buffer), partial range.
    const data::ItemRange part{n / 4, n - n / 7};
    std::vector<double> strided(n * 3, 1.0);
    term.log_prob_batch(part, params, strided.data() + n / 4 * 3 + 1, 3);
    for (std::size_t i = part.begin; i < part.end; ++i) {
      const double expected = 1.0 + term.log_prob(i, params);
      ASSERT_EQ(strided[i * 3 + 1], expected) << "term " << t << " item " << i;
      ASSERT_EQ(strided[i * 3], 1.0);      // neighbours untouched
      ASSERT_EQ(strided[i * 3 + 2], 1.0);
    }
  }
}

TEST(TermKernels, SingleNormalWithMissing) {
  data::LabeledDataset ld = data::paper_dataset(700, 21);
  data::inject_missing(ld.dataset, 0.2, 5);
  expect_term_batch_matches_scalar(Model::default_model(ld.dataset));
}

TEST(TermKernels, SingleMultinomialWithMissing) {
  const std::vector<data::CategoricalComponent> mix = {
      {0.5, {{0.7, 0.2, 0.1}, {0.6, 0.4}}},
      {0.5, {{0.1, 0.2, 0.7}, {0.3, 0.7}}},
  };
  data::LabeledDataset ld = data::categorical_mixture(mix, 600, 22);
  data::inject_missing(ld.dataset, 0.2, 6);
  expect_term_batch_matches_scalar(Model::default_model(ld.dataset));
  // Missing-as-extra-symbol policy changes the missing branch: cover both.
  ModelConfig config;
  config.missing_as_extra_value = true;
  expect_term_batch_matches_scalar(Model::default_model(ld.dataset, config));
}

TEST(TermKernels, MultiNormalBlock) {
  const double r = 0.8;
  const std::vector<data::CorrelatedComponent> mix = {
      {0.5, {0.0, 0.0}, {1.0, 0.0, r, std::sqrt(1 - r * r)}},
      {0.5, {3.0, 1.0}, {1.0, 0.0, -r, std::sqrt(1 - r * r)}},
  };
  const data::LabeledDataset ld = data::correlated_mixture(mix, 500, 23);
  expect_term_batch_matches_scalar(Model::correlated_model(ld.dataset));
}

TEST(TermKernels, SingleLognormalWithMissing) {
  Dataset d(Schema({Attribute::real("x", 0.01)}), 400);
  Xoshiro256ss rng(24);
  for (std::size_t i = 0; i < 400; ++i)
    d.set_real(i, 0, std::exp(0.5 + 0.8 * normal01(rng)));
  for (std::size_t i = 0; i < 400; i += 9) d.set_missing(i, 0);
  TermSpec spec;
  spec.kind = TermKind::kSingleLognormal;
  spec.attributes = {0};
  expect_term_batch_matches_scalar(Model(d, {spec}));
}

TEST(TermKernels, IgnoreTermIsANoOp) {
  const data::LabeledDataset ld = data::paper_dataset(100, 25);
  TermSpec normal{TermKind::kSingleNormal, {0}};
  TermSpec ignore{TermKind::kIgnore, {1}};
  const Model model(ld.dataset, {normal, ignore});
  expect_term_batch_matches_scalar(model);
}

// ---- term-level: accumulate_batch vs the scalar accumulate oracle ----

/// Synthetic membership column: varied magnitudes with exact zeros and
/// negatives sprinkled in (the w <= 0 entries the scalar M-step skips).
std::vector<double> synthetic_weights(std::size_t n, std::size_t stride) {
  std::vector<double> w(n * stride, -1.0);  // off-column slots are poison
  for (std::size_t i = 0; i < n; ++i) {
    double v = 0.05 + 0.9 * static_cast<double>((i * 37) % 101) / 101.0;
    if (i % 5 == 0) v = 0.0;          // skipped
    if (i % 11 == 3) v = -0.25;       // skipped
    if (i % 7 == 2) v = 1e-12;        // kept: tiny but positive
    w[i * stride] = v;
  }
  return w;
}

/// Batched accumulation over a partial range and a strided (J=3 column)
/// weight layout must match the per-item scalar chain bit-for-bit,
/// including the w <= 0 skips.
void expect_term_accumulate_matches_scalar(const Model& model) {
  const std::size_t n = model.dataset().num_items();
  const data::ItemRange part{n / 5, n - n / 9};
  for (std::size_t t = 0; t < model.num_terms(); ++t) {
    const Term& term = model.term(t);
    for (const std::size_t stride : {std::size_t{1}, std::size_t{3}}) {
      const std::vector<double> w = synthetic_weights(n, stride);
      // Non-zero base stats so additions (not overwrites) are checked.
      std::vector<double> scalar(term.stats_size(), 0.125);
      std::vector<double> batch = scalar;
      for (std::size_t i = part.begin; i < part.end; ++i) {
        const double wi = w[(i - part.begin) * stride];
        if (wi <= 0.0) continue;
        term.accumulate(i, wi, scalar);
      }
      term.accumulate_batch(part, w.data(), stride, batch);
      expect_bit_identical(batch, scalar);
    }
  }
}

TEST(TermMStepKernels, SingleNormalWithMissing) {
  data::LabeledDataset ld = data::paper_dataset(700, 21);
  data::inject_missing(ld.dataset, 0.2, 5);
  expect_term_accumulate_matches_scalar(Model::default_model(ld.dataset));
}

TEST(TermMStepKernels, SingleMultinomialWithMissing) {
  const std::vector<data::CategoricalComponent> mix = {
      {0.5, {{0.7, 0.2, 0.1}, {0.6, 0.4}}},
      {0.5, {{0.1, 0.2, 0.7}, {0.3, 0.7}}},
  };
  data::LabeledDataset ld = data::categorical_mixture(mix, 600, 22);
  data::inject_missing(ld.dataset, 0.2, 6);
  expect_term_accumulate_matches_scalar(Model::default_model(ld.dataset));
  // Missing-as-extra-symbol redirects missing items to the extra count
  // slot instead of skipping them: cover both policies.
  ModelConfig config;
  config.missing_as_extra_value = true;
  expect_term_accumulate_matches_scalar(
      Model::default_model(ld.dataset, config));
}

TEST(TermMStepKernels, MultiNormalBlock) {
  const double r = 0.8;
  const std::vector<data::CorrelatedComponent> mix = {
      {0.5, {0.0, 0.0}, {1.0, 0.0, r, std::sqrt(1 - r * r)}},
      {0.5, {3.0, 1.0}, {1.0, 0.0, -r, std::sqrt(1 - r * r)}},
  };
  const data::LabeledDataset ld = data::correlated_mixture(mix, 500, 23);
  expect_term_accumulate_matches_scalar(Model::correlated_model(ld.dataset));
}

TEST(TermMStepKernels, SingleLognormalWithMissing) {
  Dataset d(Schema({Attribute::real("x", 0.01)}), 400);
  Xoshiro256ss rng(24);
  for (std::size_t i = 0; i < 400; ++i)
    d.set_real(i, 0, std::exp(0.5 + 0.8 * normal01(rng)));
  for (std::size_t i = 0; i < 400; i += 9) d.set_missing(i, 0);
  TermSpec spec;
  spec.kind = TermKind::kSingleLognormal;
  spec.attributes = {0};
  expect_term_accumulate_matches_scalar(Model(d, {spec}));
}

TEST(TermMStepKernels, IgnoreTermIsANoOp) {
  const data::LabeledDataset ld = data::paper_dataset(100, 25);
  TermSpec normal{TermKind::kSingleNormal, {0}};
  TermSpec ignore{TermKind::kIgnore, {1}};
  expect_term_accumulate_matches_scalar(Model(ld.dataset, {normal, ignore}));
}

// ---- EM-level: blocked update_wts vs the scalar oracle ----

/// Run `cycles` M/E cycles twice over the same init — once through the
/// batch kernels, once through the scalar oracle — and require bit-equal
/// weight matrices, class weights, and log-likelihoods at every step.
void expect_estep_bit_equal(const Model& model, std::size_t j,
                            std::uint64_t seed, int cycles = 3) {
  const data::ItemRange all{0, model.dataset().num_items()};
  Reducer ra, rb;
  EmWorker a(model, all, ra);
  EmWorker b(model, all, rb);
  Classification ca(model, j), cb(model, j);
  a.random_init(ca, seed, 0, EmConfig{});
  b.random_init(cb, seed, 0, EmConfig{});
  expect_bit_identical(a.local_weights(), b.local_weights());
  for (int cycle = 0; cycle < cycles; ++cycle) {
    a.update_parameters(ca);
    b.update_parameters(cb);
    const double la = a.update_wts(ca);
    const double lb = b.update_wts_scalar(cb);
    ASSERT_EQ(la, lb) << "cycle " << cycle;
    expect_bit_identical(a.local_weights(), b.local_weights());
    for (std::size_t k = 0; k < j; ++k)
      ASSERT_EQ(ca.weight(k), cb.weight(k)) << "cycle " << cycle;
  }
}

TEST(UpdateWtsKernel, GaussianWithMissingBitEqualsScalar) {
  data::LabeledDataset ld = data::paper_dataset(1100, 26);
  data::inject_missing(ld.dataset, 0.15, 7);
  expect_estep_bit_equal(Model::default_model(ld.dataset), 4, 101);
}

TEST(UpdateWtsKernel, MultinomialWithMissingBitEqualsScalar) {
  const std::vector<data::CategoricalComponent> mix = {
      {0.4, {{0.8, 0.1, 0.1}, {0.9, 0.1}}},
      {0.6, {{0.1, 0.1, 0.8}, {0.2, 0.8}}},
  };
  data::LabeledDataset ld = data::categorical_mixture(mix, 900, 27);
  data::inject_missing(ld.dataset, 0.1, 8);
  expect_estep_bit_equal(Model::default_model(ld.dataset), 3, 102);
  ModelConfig config;
  config.missing_as_extra_value = true;
  expect_estep_bit_equal(Model::default_model(ld.dataset, config), 3, 102);
}

TEST(UpdateWtsKernel, MultiNormalBitEqualsScalar) {
  const double r = 0.9;
  const std::vector<data::CorrelatedComponent> mix = {
      {0.5, {0.0, 0.0}, {1.0, 0.0, r, std::sqrt(1 - r * r)}},
      {0.5, {0.0, 5.0}, {1.0, 0.0, -r, std::sqrt(1 - r * r)}},
  };
  const data::LabeledDataset ld = data::correlated_mixture(mix, 800, 28);
  expect_estep_bit_equal(Model::correlated_model(ld.dataset), 3, 103);
}

TEST(UpdateWtsKernel, LognormalWithMissingBitEqualsScalar) {
  Dataset d(Schema({Attribute::real("mass", 0.01)}), 777);
  Xoshiro256ss rng(29);
  for (std::size_t i = 0; i < 777; ++i)
    d.set_real(i, 0, std::exp(1.0 + 0.5 * normal01(rng)));
  for (std::size_t i = 3; i < 777; i += 11) d.set_missing(i, 0);
  TermSpec spec;
  spec.kind = TermKind::kSingleLognormal;
  spec.attributes = {0};
  expect_estep_bit_equal(Model(d, {spec}), 3, 104);
}

TEST(UpdateWtsKernel, MixedModelWithIgnoreBitEqualsScalar) {
  // All five families in one model: normal, multinomial, and an ignored
  // attribute, over mixed-type data with missing entries.
  std::vector<data::MixedComponent> mix(2);
  mix[0] = {0.6, {0.0, 1.0}, {1.0, 0.5}, {{0.9, 0.1}}};
  mix[1] = {0.4, {6.0, -1.0}, {1.0, 0.5}, {{0.1, 0.9}}};
  data::LabeledDataset ld = data::mixed_mixture(mix, 1000, 31);
  data::inject_missing(ld.dataset, 0.1, 9);
  std::vector<TermSpec> specs = {
      {TermKind::kSingleNormal, {0}},
      {TermKind::kIgnore, {1}},
      {TermKind::kSingleMultinomial, {2}},
  };
  expect_estep_bit_equal(Model(ld.dataset, std::move(specs)), 3, 105);
}

TEST(UpdateWtsKernel, PartitionedRanksBitEqualScalarRanks) {
  // The per-rank partition boundaries must not disturb equality: compare a
  // 3-rank kernel E-step against 3-rank scalar E-steps block by block.
  data::LabeledDataset ld = data::paper_dataset(1000, 35);
  data::inject_missing(ld.dataset, 0.1, 12);
  const Model model = Model::default_model(ld.dataset);
  for (int rank = 0; rank < 3; ++rank) {
    const data::ItemRange part = data::block_partition(1000, 3, rank);
    Reducer ra, rb;
    EmWorker a(model, part, ra);
    EmWorker b(model, part, rb);
    Classification ca(model, 4), cb(model, 4);
    a.random_init(ca, 7, 0, EmConfig{});
    b.random_init(cb, 7, 0, EmConfig{});
    a.update_parameters(ca);
    b.update_parameters(cb);
    a.update_wts(ca);
    b.update_wts_scalar(cb);
    expect_bit_identical(a.local_weights(), b.local_weights());
  }
}

// ---- EM-level: blocked update_parameters vs the scalar oracle ----

/// Run `cycles` full cycles twice over the same init — once through the
/// accumulate_batch kernels, once through the per-item scalar chain — and
/// require bit-equal statistics, parameters, and E-step results every step.
void expect_mstep_bit_equal(const Model& model, std::size_t j,
                            std::uint64_t seed, int cycles = 3) {
  const data::ItemRange all{0, model.dataset().num_items()};
  Reducer ra, rb;
  EmWorker a(model, all, ra);
  EmWorker b(model, all, rb);
  Classification ca(model, j), cb(model, j);
  a.random_init(ca, seed, 0, EmConfig{});
  b.random_init(cb, seed, 0, EmConfig{});
  for (int cycle = 0; cycle < cycles; ++cycle) {
    a.update_parameters(ca);
    b.update_parameters_scalar(cb);
    expect_bit_identical(a.statistics(), b.statistics());
    expect_bit_identical(ca.all_params(), cb.all_params());
    const double la = a.update_wts(ca);
    const double lb = b.update_wts(cb);
    ASSERT_EQ(la, lb) << "cycle " << cycle;
    expect_bit_identical(a.local_weights(), b.local_weights());
  }
}

TEST(UpdateParamsKernel, GaussianWithMissingBitEqualsScalar) {
  data::LabeledDataset ld = data::paper_dataset(1100, 26);
  data::inject_missing(ld.dataset, 0.15, 7);
  expect_mstep_bit_equal(Model::default_model(ld.dataset), 4, 101);
}

TEST(UpdateParamsKernel, MultinomialWithMissingBitEqualsScalar) {
  const std::vector<data::CategoricalComponent> mix = {
      {0.4, {{0.8, 0.1, 0.1}, {0.9, 0.1}}},
      {0.6, {{0.1, 0.1, 0.8}, {0.2, 0.8}}},
  };
  data::LabeledDataset ld = data::categorical_mixture(mix, 900, 27);
  data::inject_missing(ld.dataset, 0.1, 8);
  expect_mstep_bit_equal(Model::default_model(ld.dataset), 3, 102);
  ModelConfig config;
  config.missing_as_extra_value = true;
  expect_mstep_bit_equal(Model::default_model(ld.dataset, config), 3, 102);
}

TEST(UpdateParamsKernel, MultiNormalBitEqualsScalar) {
  const double r = 0.9;
  const std::vector<data::CorrelatedComponent> mix = {
      {0.5, {0.0, 0.0}, {1.0, 0.0, r, std::sqrt(1 - r * r)}},
      {0.5, {0.0, 5.0}, {1.0, 0.0, -r, std::sqrt(1 - r * r)}},
  };
  const data::LabeledDataset ld = data::correlated_mixture(mix, 800, 28);
  expect_mstep_bit_equal(Model::correlated_model(ld.dataset), 3, 103);
}

TEST(UpdateParamsKernel, LognormalWithMissingBitEqualsScalar) {
  Dataset d(Schema({Attribute::real("mass", 0.01)}), 777);
  Xoshiro256ss rng(29);
  for (std::size_t i = 0; i < 777; ++i)
    d.set_real(i, 0, std::exp(1.0 + 0.5 * normal01(rng)));
  for (std::size_t i = 3; i < 777; i += 11) d.set_missing(i, 0);
  TermSpec spec;
  spec.kind = TermKind::kSingleLognormal;
  spec.attributes = {0};
  expect_mstep_bit_equal(Model(d, {spec}), 3, 104);
}

TEST(UpdateParamsKernel, MixedModelWithIgnoreBitEqualsScalar) {
  std::vector<data::MixedComponent> mix(2);
  mix[0] = {0.6, {0.0, 1.0}, {1.0, 0.5}, {{0.9, 0.1}}};
  mix[1] = {0.4, {6.0, -1.0}, {1.0, 0.5}, {{0.1, 0.9}}};
  data::LabeledDataset ld = data::mixed_mixture(mix, 1000, 31);
  data::inject_missing(ld.dataset, 0.1, 9);
  std::vector<TermSpec> specs = {
      {TermKind::kSingleNormal, {0}},
      {TermKind::kIgnore, {1}},
      {TermKind::kSingleMultinomial, {2}},
  };
  expect_mstep_bit_equal(Model(ld.dataset, std::move(specs)), 3, 105);
}

TEST(UpdateParamsKernel, PartitionedRanksBitEqualScalarRanks) {
  // Per-rank partition boundaries must not disturb M-step equality either.
  data::LabeledDataset ld = data::paper_dataset(1000, 35);
  data::inject_missing(ld.dataset, 0.1, 12);
  const Model model = Model::default_model(ld.dataset);
  for (int rank = 0; rank < 3; ++rank) {
    const data::ItemRange part = data::block_partition(1000, 3, rank);
    Reducer ra, rb;
    EmWorker a(model, part, ra);
    EmWorker b(model, part, rb);
    Classification ca(model, 4), cb(model, 4);
    a.random_init(ca, 7, 0, EmConfig{});
    b.random_init(cb, 7, 0, EmConfig{});
    a.update_parameters(ca);
    b.update_parameters_scalar(cb);
    expect_bit_identical(a.statistics(), b.statistics());
    expect_bit_identical(ca.all_params(), cb.all_params());
  }
}

// ---- thread-count invariance ----

/// One converged run at a given thread count, reduced to its observable
/// outputs: final weights matrix, parameters, scores, and hard labels.
struct ThreadRun {
  std::vector<double> weights;
  std::vector<double> params;
  std::vector<double> class_weights;
  double log_likelihood = 0.0;
  double cs_score = 0.0;
  double bic_score = 0.0;
  std::vector<std::int32_t> labels;
};

ThreadRun run_with_threads(const Model& model, std::size_t j,
                           std::uint64_t seed, int threads) {
  Reducer identity;
  EmWorker worker(model, data::ItemRange{0, model.dataset().num_items()},
                  identity);
  Classification c(model, j);
  EmConfig config;
  config.threads = threads;
  config.max_cycles = 25;
  worker.random_init(c, seed, 0, config);
  worker.converge(c, config);
  ThreadRun run;
  const std::span<const double> w = worker.local_weights();
  run.weights.assign(w.begin(), w.end());
  const std::span<const double> p = c.all_params();
  run.params.assign(p.begin(), p.end());
  for (std::size_t k = 0; k < c.num_classes(); ++k)
    run.class_weights.push_back(c.weight(k));
  run.log_likelihood = c.log_likelihood;
  run.cs_score = c.cs_score;
  run.bic_score = c.bic_score;
  run.labels = assign_labels(c);
  return run;
}

/// Converged EM trajectories must be bit-identical at 1, 2, and 4 threads:
/// the block-ordered partial fold makes every value a pure function of the
/// block size, not of the thread count (DESIGN.md §5).
void expect_thread_invariant(const Model& model, std::size_t j,
                             std::uint64_t seed) {
  const ThreadRun one = run_with_threads(model, j, seed, 1);
  for (const int threads : {2, 4}) {
    const ThreadRun t = run_with_threads(model, j, seed, threads);
    expect_bit_identical(t.weights, one.weights);
    expect_bit_identical(t.params, one.params);
    expect_bit_identical(t.class_weights, one.class_weights);
    ASSERT_EQ(t.log_likelihood, one.log_likelihood) << threads << " threads";
    ASSERT_EQ(t.cs_score, one.cs_score) << threads << " threads";
    ASSERT_EQ(t.bic_score, one.bic_score) << threads << " threads";
    ASSERT_EQ(t.labels, one.labels) << threads << " threads";
  }
}

TEST(ThreadInvariance, GaussianWithMissing) {
  data::LabeledDataset ld = data::paper_dataset(900, 41);
  data::inject_missing(ld.dataset, 0.15, 14);
  expect_thread_invariant(Model::default_model(ld.dataset), 4, 201);
}

TEST(ThreadInvariance, MultinomialWithMissing) {
  const std::vector<data::CategoricalComponent> mix = {
      {0.4, {{0.8, 0.1, 0.1}, {0.9, 0.1}}},
      {0.6, {{0.1, 0.1, 0.8}, {0.2, 0.8}}},
  };
  data::LabeledDataset ld = data::categorical_mixture(mix, 800, 42);
  data::inject_missing(ld.dataset, 0.1, 15);
  expect_thread_invariant(Model::default_model(ld.dataset), 3, 202);
}

TEST(ThreadInvariance, MultiNormal) {
  const double r = 0.85;
  const std::vector<data::CorrelatedComponent> mix = {
      {0.5, {0.0, 0.0}, {1.0, 0.0, r, std::sqrt(1 - r * r)}},
      {0.5, {4.0, 2.0}, {1.0, 0.0, -r, std::sqrt(1 - r * r)}},
  };
  const data::LabeledDataset ld = data::correlated_mixture(mix, 700, 43);
  expect_thread_invariant(Model::correlated_model(ld.dataset), 3, 203);
}

TEST(ThreadInvariance, LognormalWithMissing) {
  Dataset d(Schema({Attribute::real("mass", 0.01)}), 650);
  Xoshiro256ss rng(44);
  for (std::size_t i = 0; i < 650; ++i)
    d.set_real(i, 0, std::exp(1.0 + 0.5 * normal01(rng)));
  for (std::size_t i = 2; i < 650; i += 13) d.set_missing(i, 0);
  TermSpec spec;
  spec.kind = TermKind::kSingleLognormal;
  spec.attributes = {0};
  expect_thread_invariant(Model(d, {spec}), 3, 204);
}

TEST(ThreadInvariance, MixedModelWithIgnore) {
  std::vector<data::MixedComponent> mix(2);
  mix[0] = {0.6, {0.0, 1.0}, {1.0, 0.5}, {{0.9, 0.1}}};
  mix[1] = {0.4, {6.0, -1.0}, {1.0, 0.5}, {{0.1, 0.9}}};
  data::LabeledDataset ld = data::mixed_mixture(mix, 850, 45);
  data::inject_missing(ld.dataset, 0.1, 16);
  std::vector<TermSpec> specs = {
      {TermKind::kSingleNormal, {0}},
      {TermKind::kIgnore, {1}},
      {TermKind::kSingleMultinomial, {2}},
  };
  expect_thread_invariant(Model(ld.dataset, std::move(specs)), 3, 205);
}

TEST(ThreadInvariance, EnvVariableMatchesExplicitConfig) {
  // EmConfig::threads = 0 reads PAC_EM_THREADS; the trajectory must match
  // the same count requested explicitly.
  data::LabeledDataset ld = data::paper_dataset(500, 46);
  const Model model = Model::default_model(ld.dataset);
  const ThreadRun explicit_two = run_with_threads(model, 3, 206, 2);
  setenv("PAC_EM_THREADS", "2", 1);
  const ThreadRun via_env = run_with_threads(model, 3, 206, 0);
  unsetenv("PAC_EM_THREADS");
  expect_bit_identical(via_env.weights, explicit_two.weights);
  expect_bit_identical(via_env.params, explicit_two.params);
  ASSERT_EQ(via_env.cs_score, explicit_two.cs_score);
}

TEST(ThreadInvariance, ScalarOraclesAreAlsoThreadInvariant) {
  // The scalar E/M oracles share the blocked drivers, so they too must be
  // invariant — otherwise the equality tests would only hold at 1 thread.
  data::LabeledDataset ld = data::paper_dataset(600, 47);
  data::inject_missing(ld.dataset, 0.1, 17);
  const Model model = Model::default_model(ld.dataset);
  const data::ItemRange all{0, 600};
  std::vector<std::vector<double>> weights;
  std::vector<double> loglikes;
  for (const int threads : {1, 4}) {
    Reducer identity;
    EmWorker worker(model, all, identity);
    Classification c(model, 3);
    EmConfig config;
    config.threads = threads;
    worker.random_init(c, 207, 0, config);
    worker.update_parameters_scalar(c);
    loglikes.push_back(worker.update_wts_scalar(c));
    const std::span<const double> w = worker.local_weights();
    weights.emplace_back(w.begin(), w.end());
  }
  ASSERT_EQ(loglikes[0], loglikes[1]);
  expect_bit_identical(weights[0], weights[1]);
}

TEST(ThreadInvariance, DegenerateRowErrorIsDeterministic) {
  // Two degenerate items in different blocks: every thread count must
  // report the *lowest-indexed* one (block-ordered error fold).
  const std::size_t n = 600;  // > 2 blocks of 256
  Dataset d(Schema({Attribute::discrete("s", 2)}), n);
  for (std::size_t i = 0; i < n; ++i)
    d.set_discrete(i, 0, (i == 300 || i == 580) ? 1 : 0);
  const Model model = Model::default_model(d);
  const double inf = std::numeric_limits<double>::infinity();
  for (const int threads : {1, 2, 4}) {
    Reducer identity;
    EmWorker worker(model, data::ItemRange{0, n}, identity);
    Classification c(model, 2);
    EmConfig config;
    config.threads = threads;
    worker.random_init(c, 3, 0, config);
    worker.update_parameters(c);
    for (std::size_t k = 0; k < 2; ++k) c.param_block(k, 0)[1] = -inf;
    try {
      worker.update_wts(c);
      FAIL() << "expected DegenerateRowError at " << threads << " threads";
    } catch (const DegenerateRowError& e) {
      EXPECT_EQ(e.item, 300u) << threads << " threads";
    }
  }
}

// ---- report paths routed through the kernels ----

TEST(ReportKernels, MembershipMatchesScalarJoint) {
  const data::LabeledDataset ld = data::paper_dataset(300, 36);
  const Model model = Model::default_model(ld.dataset);
  Reducer identity;
  EmWorker worker(model, data::ItemRange{0, 300}, identity);
  Classification c(model, 3);
  EmConfig config;
  worker.random_init(c, 47, 0, config);
  worker.converge(c, config);
  for (std::size_t i = 0; i < 300; i += 13) {
    // Scalar joint row, normalized exactly as report.cpp does.
    std::vector<double> row(3);
    for (std::size_t k = 0; k < 3; ++k) {
      double lp = c.log_pi(k);
      for (std::size_t t = 0; t < model.num_terms(); ++t)
        lp += model.term(t).log_prob(i, c.param_block(k, t));
      row[k] = lp;
    }
    const double lse = logsumexp(row);
    for (double& v : row) v = std::exp(v - lse);
    const auto m = membership(c, i);
    expect_bit_identical(m, row);
  }
}

TEST(ReportKernels, AssignLabelsMatchesPerItemMembership) {
  const data::LabeledDataset ld = data::paper_dataset(600, 37);
  const Model model = Model::default_model(ld.dataset);
  Reducer identity;
  EmWorker worker(model, data::ItemRange{0, 600}, identity);
  Classification c(model, 4);
  EmConfig config;
  worker.random_init(c, 49, 0, config);
  worker.converge(c, config);
  const auto labels = assign_labels(c);
  ASSERT_EQ(labels.size(), 600u);
  for (std::size_t i = 0; i < 600; i += 29) {
    const auto m = membership(c, i);
    const auto best = static_cast<std::int32_t>(
        std::max_element(m.begin(), m.end()) - m.begin());
    EXPECT_EQ(labels[i], best) << "item " << i;
  }
}

// ---- degenerate-row guard ----

TEST(DegenerateRow, AllInfRowRaisesTypedErrorNamingItem) {
  Dataset d(Schema({Attribute::discrete("s", 2)}), 6);
  for (std::size_t i = 0; i < 6; ++i)
    d.set_discrete(i, 0, i == 4 ? 1 : 0);
  const Model model = Model::default_model(d);
  Reducer identity;
  EmWorker worker(model, data::ItemRange{0, 6}, identity);
  Classification c(model, 2);
  worker.random_init(c, 3, 0, EmConfig{});
  worker.update_parameters(c);
  // Zero-support symbol: both classes rule out symbol 1, so item 4's row
  // is -inf under every class.
  const double inf = std::numeric_limits<double>::infinity();
  for (std::size_t k = 0; k < 2; ++k) c.param_block(k, 0)[1] = -inf;
  try {
    worker.update_wts(c);
    FAIL() << "expected DegenerateRowError";
  } catch (const DegenerateRowError& e) {
    EXPECT_EQ(e.item, 4u);
    EXPECT_EQ(e.num_classes, 2u);
    EXPECT_NE(std::string(e.what()).find("item 4"), std::string::npos);
  }
  // The scalar oracle guards identically.
  EXPECT_THROW(worker.update_wts_scalar(c), DegenerateRowError);
}

TEST(DegenerateRow, FiniteRowsStillConverge) {
  // The guard must not fire on ordinary data (including missing values).
  data::LabeledDataset ld = data::paper_dataset(400, 39);
  data::inject_missing(ld.dataset, 0.2, 13);
  const Model model = Model::default_model(ld.dataset);
  Reducer identity;
  EmWorker worker(model, data::ItemRange{0, 400}, identity);
  Classification c(model, 3);
  EmConfig config;
  worker.random_init(c, 51, 0, config);
  EXPECT_NO_THROW(worker.converge(c, config));
}

// ---- seed-item draw fallback ----

TEST(SeedDraws, DefaultBudgetDistinctWhenPossible) {
  const CounterRng rng(123);
  for (std::uint64_t try_index = 0; try_index < 8; ++try_index) {
    const auto seeds = detail::draw_seed_items(rng, 16, 16, try_index);
    ASSERT_EQ(seeds.size(), 16u);
    const std::set<std::size_t> unique(seeds.begin(), seeds.end());
    // j == n: every item must be picked exactly once — the old fallback
    // pushed duplicates here and produced zero-separation classes.
    EXPECT_EQ(unique.size(), 16u) << "try " << try_index;
  }
}

TEST(SeedDraws, TinyPrimaryBudgetForcesDistinctFallback) {
  const CounterRng rng(7);
  // A budget of 1 draw forces the widened-stream fallback almost every
  // collision; seeds must still be distinct and in range.
  const auto seeds = detail::draw_seed_items(rng, 10, 10, 0, 1);
  ASSERT_EQ(seeds.size(), 10u);
  std::set<std::size_t> unique(seeds.begin(), seeds.end());
  EXPECT_EQ(unique.size(), 10u);
  for (const std::size_t s : seeds) EXPECT_LT(s, 10u);
}

TEST(SeedDraws, DeterministicAcrossCalls) {
  const CounterRng rng(99);
  const auto a = detail::draw_seed_items(rng, 50, 12, 3, 2);
  const auto b = detail::draw_seed_items(rng, 50, 12, 3, 2);
  EXPECT_EQ(a, b);
  // Different tries draw from different streams.
  const auto c = detail::draw_seed_items(rng, 50, 12, 4, 2);
  EXPECT_NE(a, c);
}

TEST(SeedDraws, MoreClassesThanItemsStillTerminates) {
  const CounterRng rng(5);
  const auto seeds = detail::draw_seed_items(rng, 3, 9, 0);
  ASSERT_EQ(seeds.size(), 9u);
  const std::set<std::size_t> unique(seeds.begin(), seeds.end());
  EXPECT_EQ(unique.size(), 3u);  // every item used before duplicates
  for (const std::size_t s : seeds) EXPECT_LT(s, 3u);
}

TEST(SeedDraws, CommonCaseMatchesHistoricalPrimaryStream) {
  // Collision-free draws must still come from the primary stream with the
  // historical (stream, index, counter) coordinates, so pre-fix EM
  // trajectories are preserved.
  const std::size_t n = 100000;
  const CounterRng rng(2024);
  const auto seeds = detail::draw_seed_items(rng, n, 4, 2);
  std::vector<std::size_t> expected;
  std::uint64_t draw = 0;
  while (expected.size() < 4) {
    const auto candidate = std::min(
        n - 1,
        static_cast<std::size_t>(
            rng.uniform(0x1A17 + 2, expected.size(), draw) *
            static_cast<double>(n)));
    ++draw;
    if (std::find(expected.begin(), expected.end(), candidate) ==
        expected.end())
      expected.push_back(candidate);
  }
  EXPECT_EQ(seeds, expected);
}

}  // namespace
}  // namespace pac::ac
