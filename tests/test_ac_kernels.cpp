// Kernel-layer tests: the batched Term::log_prob_batch E-step kernels and
// the Term::accumulate_batch M-step kernels must be *bit-identical* to
// their scalar oracles (the per-item virtual log_prob / accumulate chains)
// for every term family, with and without missing values — the determinism
// contract of DESIGN.md's kernel section.  The blocked EM drivers must in
// turn be invariant in the thread count (EmConfig::threads /
// PAC_EM_THREADS): per-block partials folded in block-index order make
// every trajectory a pure function of the block size.  Also covers the
// degenerate-row guard and the seed-item draw fallback fix.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <set>
#include <string>

#include "autoclass/em.hpp"
#include "autoclass/report.hpp"
#include "data/synth.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace pac::ac {
namespace {

using data::Attribute;
using data::Dataset;
using data::Schema;

void expect_bit_identical(std::span<const double> a,
                          std::span<const double> b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(double)), 0);
}

// ---- term-level: log_prob_batch vs the scalar log_prob oracle ----

/// Fit one class's parameters over the whole dataset (w = 1) so the batch
/// kernels are exercised at realistic parameter values.
std::vector<double> fit_term_params(const Term& term, std::size_t n) {
  std::vector<double> stats(term.stats_size(), 0.0);
  for (std::size_t i = 0; i < n; ++i) term.accumulate(i, 1.0, stats);
  std::vector<double> params(term.param_size(), 0.0);
  term.update_params(stats, params);
  return params;
}

/// Batch accumulation into a non-trivial base row, at stride 1 and a
/// strided layout, must match per-item scalar accumulation bit-for-bit.
void expect_term_batch_matches_scalar(const Model& model) {
  const std::size_t n = model.dataset().num_items();
  for (std::size_t t = 0; t < model.num_terms(); ++t) {
    const Term& term = model.term(t);
    const std::vector<double> params = fit_term_params(term, n);
    std::vector<double> scalar(n), batch(n);
    for (std::size_t i = 0; i < n; ++i)
      scalar[i] = batch[i] = -0.25 * static_cast<double>(i % 7);
    for (std::size_t i = 0; i < n; ++i)
      scalar[i] += term.log_prob(i, params);
    term.log_prob_batch(data::ItemRange{0, n}, params, batch.data(), 1);
    expect_bit_identical(batch, scalar);

    // Strided (one class-column of a J=3 row buffer), partial range.
    const data::ItemRange part{n / 4, n - n / 7};
    std::vector<double> strided(n * 3, 1.0);
    term.log_prob_batch(part, params, strided.data() + n / 4 * 3 + 1, 3);
    for (std::size_t i = part.begin; i < part.end; ++i) {
      const double expected = 1.0 + term.log_prob(i, params);
      ASSERT_EQ(strided[i * 3 + 1], expected) << "term " << t << " item " << i;
      ASSERT_EQ(strided[i * 3], 1.0);      // neighbours untouched
      ASSERT_EQ(strided[i * 3 + 2], 1.0);
    }
  }
}

TEST(TermKernels, SingleNormalWithMissing) {
  data::LabeledDataset ld = data::paper_dataset(700, 21);
  data::inject_missing(ld.dataset, 0.2, 5);
  expect_term_batch_matches_scalar(Model::default_model(ld.dataset));
}

TEST(TermKernels, SingleMultinomialWithMissing) {
  const std::vector<data::CategoricalComponent> mix = {
      {0.5, {{0.7, 0.2, 0.1}, {0.6, 0.4}}},
      {0.5, {{0.1, 0.2, 0.7}, {0.3, 0.7}}},
  };
  data::LabeledDataset ld = data::categorical_mixture(mix, 600, 22);
  data::inject_missing(ld.dataset, 0.2, 6);
  expect_term_batch_matches_scalar(Model::default_model(ld.dataset));
  // Missing-as-extra-symbol policy changes the missing branch: cover both.
  ModelConfig config;
  config.missing_as_extra_value = true;
  expect_term_batch_matches_scalar(Model::default_model(ld.dataset, config));
}

TEST(TermKernels, MultiNormalBlock) {
  const double r = 0.8;
  const std::vector<data::CorrelatedComponent> mix = {
      {0.5, {0.0, 0.0}, {1.0, 0.0, r, std::sqrt(1 - r * r)}},
      {0.5, {3.0, 1.0}, {1.0, 0.0, -r, std::sqrt(1 - r * r)}},
  };
  const data::LabeledDataset ld = data::correlated_mixture(mix, 500, 23);
  expect_term_batch_matches_scalar(Model::correlated_model(ld.dataset));
}

TEST(TermKernels, SingleLognormalWithMissing) {
  Dataset d(Schema({Attribute::real("x", 0.01)}), 400);
  Xoshiro256ss rng(24);
  for (std::size_t i = 0; i < 400; ++i)
    d.set_real(i, 0, std::exp(0.5 + 0.8 * normal01(rng)));
  for (std::size_t i = 0; i < 400; i += 9) d.set_missing(i, 0);
  TermSpec spec;
  spec.kind = TermKind::kSingleLognormal;
  spec.attributes = {0};
  expect_term_batch_matches_scalar(Model(d, {spec}));
}

TEST(TermKernels, IgnoreTermIsANoOp) {
  const data::LabeledDataset ld = data::paper_dataset(100, 25);
  TermSpec normal{TermKind::kSingleNormal, {0}};
  TermSpec ignore{TermKind::kIgnore, {1}};
  const Model model(ld.dataset, {normal, ignore});
  expect_term_batch_matches_scalar(model);
}

// ---- term-level: accumulate_batch vs the scalar accumulate oracle ----

/// Synthetic membership column: varied magnitudes with exact zeros and
/// negatives sprinkled in (the w <= 0 entries the scalar M-step skips).
std::vector<double> synthetic_weights(std::size_t n, std::size_t stride) {
  std::vector<double> w(n * stride, -1.0);  // off-column slots are poison
  for (std::size_t i = 0; i < n; ++i) {
    double v = 0.05 + 0.9 * static_cast<double>((i * 37) % 101) / 101.0;
    if (i % 5 == 0) v = 0.0;          // skipped
    if (i % 11 == 3) v = -0.25;       // skipped
    if (i % 7 == 2) v = 1e-12;        // kept: tiny but positive
    w[i * stride] = v;
  }
  return w;
}

/// Batched accumulation over a partial range and a strided (J=3 column)
/// weight layout must match the per-item scalar chain bit-for-bit,
/// including the w <= 0 skips.
void expect_term_accumulate_matches_scalar(const Model& model) {
  const std::size_t n = model.dataset().num_items();
  const data::ItemRange part{n / 5, n - n / 9};
  for (std::size_t t = 0; t < model.num_terms(); ++t) {
    const Term& term = model.term(t);
    for (const std::size_t stride : {std::size_t{1}, std::size_t{3}}) {
      const std::vector<double> w = synthetic_weights(n, stride);
      // Non-zero base stats so additions (not overwrites) are checked.
      std::vector<double> scalar(term.stats_size(), 0.125);
      std::vector<double> batch = scalar;
      for (std::size_t i = part.begin; i < part.end; ++i) {
        const double wi = w[(i - part.begin) * stride];
        if (wi <= 0.0) continue;
        term.accumulate(i, wi, scalar);
      }
      term.accumulate_batch(part, w.data(), stride, batch);
      expect_bit_identical(batch, scalar);
    }
  }
}

TEST(TermMStepKernels, SingleNormalWithMissing) {
  data::LabeledDataset ld = data::paper_dataset(700, 21);
  data::inject_missing(ld.dataset, 0.2, 5);
  expect_term_accumulate_matches_scalar(Model::default_model(ld.dataset));
}

TEST(TermMStepKernels, SingleMultinomialWithMissing) {
  const std::vector<data::CategoricalComponent> mix = {
      {0.5, {{0.7, 0.2, 0.1}, {0.6, 0.4}}},
      {0.5, {{0.1, 0.2, 0.7}, {0.3, 0.7}}},
  };
  data::LabeledDataset ld = data::categorical_mixture(mix, 600, 22);
  data::inject_missing(ld.dataset, 0.2, 6);
  expect_term_accumulate_matches_scalar(Model::default_model(ld.dataset));
  // Missing-as-extra-symbol redirects missing items to the extra count
  // slot instead of skipping them: cover both policies.
  ModelConfig config;
  config.missing_as_extra_value = true;
  expect_term_accumulate_matches_scalar(
      Model::default_model(ld.dataset, config));
}

TEST(TermMStepKernels, MultiNormalBlock) {
  const double r = 0.8;
  const std::vector<data::CorrelatedComponent> mix = {
      {0.5, {0.0, 0.0}, {1.0, 0.0, r, std::sqrt(1 - r * r)}},
      {0.5, {3.0, 1.0}, {1.0, 0.0, -r, std::sqrt(1 - r * r)}},
  };
  const data::LabeledDataset ld = data::correlated_mixture(mix, 500, 23);
  expect_term_accumulate_matches_scalar(Model::correlated_model(ld.dataset));
}

TEST(TermMStepKernels, SingleLognormalWithMissing) {
  Dataset d(Schema({Attribute::real("x", 0.01)}), 400);
  Xoshiro256ss rng(24);
  for (std::size_t i = 0; i < 400; ++i)
    d.set_real(i, 0, std::exp(0.5 + 0.8 * normal01(rng)));
  for (std::size_t i = 0; i < 400; i += 9) d.set_missing(i, 0);
  TermSpec spec;
  spec.kind = TermKind::kSingleLognormal;
  spec.attributes = {0};
  expect_term_accumulate_matches_scalar(Model(d, {spec}));
}

TEST(TermMStepKernels, IgnoreTermIsANoOp) {
  const data::LabeledDataset ld = data::paper_dataset(100, 25);
  TermSpec normal{TermKind::kSingleNormal, {0}};
  TermSpec ignore{TermKind::kIgnore, {1}};
  expect_term_accumulate_matches_scalar(Model(ld.dataset, {normal, ignore}));
}

// ---- EM-level: blocked update_wts vs the scalar oracle ----

/// Run `cycles` M/E cycles twice over the same init — once through the
/// batch kernels, once through the scalar oracle — and require bit-equal
/// weight matrices, class weights, and log-likelihoods at every step.
void expect_estep_bit_equal(const Model& model, std::size_t j,
                            std::uint64_t seed, int cycles = 3) {
  const data::ItemRange all{0, model.dataset().num_items()};
  Reducer ra, rb;
  EmWorker a(model, all, ra);
  EmWorker b(model, all, rb);
  Classification ca(model, j), cb(model, j);
  a.random_init(ca, seed, 0, EmConfig{});
  b.random_init(cb, seed, 0, EmConfig{});
  expect_bit_identical(a.local_weights(), b.local_weights());
  for (int cycle = 0; cycle < cycles; ++cycle) {
    a.update_parameters(ca);
    b.update_parameters(cb);
    const double la = a.update_wts(ca);
    const double lb = b.update_wts_scalar(cb);
    ASSERT_EQ(la, lb) << "cycle " << cycle;
    expect_bit_identical(a.local_weights(), b.local_weights());
    for (std::size_t k = 0; k < j; ++k)
      ASSERT_EQ(ca.weight(k), cb.weight(k)) << "cycle " << cycle;
  }
}

TEST(UpdateWtsKernel, GaussianWithMissingBitEqualsScalar) {
  data::LabeledDataset ld = data::paper_dataset(1100, 26);
  data::inject_missing(ld.dataset, 0.15, 7);
  expect_estep_bit_equal(Model::default_model(ld.dataset), 4, 101);
}

TEST(UpdateWtsKernel, MultinomialWithMissingBitEqualsScalar) {
  const std::vector<data::CategoricalComponent> mix = {
      {0.4, {{0.8, 0.1, 0.1}, {0.9, 0.1}}},
      {0.6, {{0.1, 0.1, 0.8}, {0.2, 0.8}}},
  };
  data::LabeledDataset ld = data::categorical_mixture(mix, 900, 27);
  data::inject_missing(ld.dataset, 0.1, 8);
  expect_estep_bit_equal(Model::default_model(ld.dataset), 3, 102);
  ModelConfig config;
  config.missing_as_extra_value = true;
  expect_estep_bit_equal(Model::default_model(ld.dataset, config), 3, 102);
}

TEST(UpdateWtsKernel, MultiNormalBitEqualsScalar) {
  const double r = 0.9;
  const std::vector<data::CorrelatedComponent> mix = {
      {0.5, {0.0, 0.0}, {1.0, 0.0, r, std::sqrt(1 - r * r)}},
      {0.5, {0.0, 5.0}, {1.0, 0.0, -r, std::sqrt(1 - r * r)}},
  };
  const data::LabeledDataset ld = data::correlated_mixture(mix, 800, 28);
  expect_estep_bit_equal(Model::correlated_model(ld.dataset), 3, 103);
}

TEST(UpdateWtsKernel, LognormalWithMissingBitEqualsScalar) {
  Dataset d(Schema({Attribute::real("mass", 0.01)}), 777);
  Xoshiro256ss rng(29);
  for (std::size_t i = 0; i < 777; ++i)
    d.set_real(i, 0, std::exp(1.0 + 0.5 * normal01(rng)));
  for (std::size_t i = 3; i < 777; i += 11) d.set_missing(i, 0);
  TermSpec spec;
  spec.kind = TermKind::kSingleLognormal;
  spec.attributes = {0};
  expect_estep_bit_equal(Model(d, {spec}), 3, 104);
}

TEST(UpdateWtsKernel, MixedModelWithIgnoreBitEqualsScalar) {
  // All five families in one model: normal, multinomial, and an ignored
  // attribute, over mixed-type data with missing entries.
  std::vector<data::MixedComponent> mix(2);
  mix[0] = {0.6, {0.0, 1.0}, {1.0, 0.5}, {{0.9, 0.1}}};
  mix[1] = {0.4, {6.0, -1.0}, {1.0, 0.5}, {{0.1, 0.9}}};
  data::LabeledDataset ld = data::mixed_mixture(mix, 1000, 31);
  data::inject_missing(ld.dataset, 0.1, 9);
  std::vector<TermSpec> specs = {
      {TermKind::kSingleNormal, {0}},
      {TermKind::kIgnore, {1}},
      {TermKind::kSingleMultinomial, {2}},
  };
  expect_estep_bit_equal(Model(ld.dataset, std::move(specs)), 3, 105);
}

TEST(UpdateWtsKernel, PartitionedRanksBitEqualScalarRanks) {
  // The per-rank partition boundaries must not disturb equality: compare a
  // 3-rank kernel E-step against 3-rank scalar E-steps block by block.
  data::LabeledDataset ld = data::paper_dataset(1000, 35);
  data::inject_missing(ld.dataset, 0.1, 12);
  const Model model = Model::default_model(ld.dataset);
  for (int rank = 0; rank < 3; ++rank) {
    const data::ItemRange part = data::block_partition(1000, 3, rank);
    Reducer ra, rb;
    EmWorker a(model, part, ra);
    EmWorker b(model, part, rb);
    Classification ca(model, 4), cb(model, 4);
    a.random_init(ca, 7, 0, EmConfig{});
    b.random_init(cb, 7, 0, EmConfig{});
    a.update_parameters(ca);
    b.update_parameters(cb);
    a.update_wts(ca);
    b.update_wts_scalar(cb);
    expect_bit_identical(a.local_weights(), b.local_weights());
  }
}

// ---- EM-level: blocked update_parameters vs the scalar oracle ----

/// Run `cycles` full cycles twice over the same init — once through the
/// accumulate_batch kernels, once through the per-item scalar chain — and
/// require bit-equal statistics, parameters, and E-step results every step.
void expect_mstep_bit_equal(const Model& model, std::size_t j,
                            std::uint64_t seed, int cycles = 3) {
  const data::ItemRange all{0, model.dataset().num_items()};
  Reducer ra, rb;
  EmWorker a(model, all, ra);
  EmWorker b(model, all, rb);
  Classification ca(model, j), cb(model, j);
  a.random_init(ca, seed, 0, EmConfig{});
  b.random_init(cb, seed, 0, EmConfig{});
  for (int cycle = 0; cycle < cycles; ++cycle) {
    a.update_parameters(ca);
    b.update_parameters_scalar(cb);
    expect_bit_identical(a.statistics(), b.statistics());
    expect_bit_identical(ca.all_params(), cb.all_params());
    const double la = a.update_wts(ca);
    const double lb = b.update_wts(cb);
    ASSERT_EQ(la, lb) << "cycle " << cycle;
    expect_bit_identical(a.local_weights(), b.local_weights());
  }
}

TEST(UpdateParamsKernel, GaussianWithMissingBitEqualsScalar) {
  data::LabeledDataset ld = data::paper_dataset(1100, 26);
  data::inject_missing(ld.dataset, 0.15, 7);
  expect_mstep_bit_equal(Model::default_model(ld.dataset), 4, 101);
}

TEST(UpdateParamsKernel, MultinomialWithMissingBitEqualsScalar) {
  const std::vector<data::CategoricalComponent> mix = {
      {0.4, {{0.8, 0.1, 0.1}, {0.9, 0.1}}},
      {0.6, {{0.1, 0.1, 0.8}, {0.2, 0.8}}},
  };
  data::LabeledDataset ld = data::categorical_mixture(mix, 900, 27);
  data::inject_missing(ld.dataset, 0.1, 8);
  expect_mstep_bit_equal(Model::default_model(ld.dataset), 3, 102);
  ModelConfig config;
  config.missing_as_extra_value = true;
  expect_mstep_bit_equal(Model::default_model(ld.dataset, config), 3, 102);
}

TEST(UpdateParamsKernel, MultiNormalBitEqualsScalar) {
  const double r = 0.9;
  const std::vector<data::CorrelatedComponent> mix = {
      {0.5, {0.0, 0.0}, {1.0, 0.0, r, std::sqrt(1 - r * r)}},
      {0.5, {0.0, 5.0}, {1.0, 0.0, -r, std::sqrt(1 - r * r)}},
  };
  const data::LabeledDataset ld = data::correlated_mixture(mix, 800, 28);
  expect_mstep_bit_equal(Model::correlated_model(ld.dataset), 3, 103);
}

TEST(UpdateParamsKernel, LognormalWithMissingBitEqualsScalar) {
  Dataset d(Schema({Attribute::real("mass", 0.01)}), 777);
  Xoshiro256ss rng(29);
  for (std::size_t i = 0; i < 777; ++i)
    d.set_real(i, 0, std::exp(1.0 + 0.5 * normal01(rng)));
  for (std::size_t i = 3; i < 777; i += 11) d.set_missing(i, 0);
  TermSpec spec;
  spec.kind = TermKind::kSingleLognormal;
  spec.attributes = {0};
  expect_mstep_bit_equal(Model(d, {spec}), 3, 104);
}

TEST(UpdateParamsKernel, MixedModelWithIgnoreBitEqualsScalar) {
  std::vector<data::MixedComponent> mix(2);
  mix[0] = {0.6, {0.0, 1.0}, {1.0, 0.5}, {{0.9, 0.1}}};
  mix[1] = {0.4, {6.0, -1.0}, {1.0, 0.5}, {{0.1, 0.9}}};
  data::LabeledDataset ld = data::mixed_mixture(mix, 1000, 31);
  data::inject_missing(ld.dataset, 0.1, 9);
  std::vector<TermSpec> specs = {
      {TermKind::kSingleNormal, {0}},
      {TermKind::kIgnore, {1}},
      {TermKind::kSingleMultinomial, {2}},
  };
  expect_mstep_bit_equal(Model(ld.dataset, std::move(specs)), 3, 105);
}

TEST(UpdateParamsKernel, PartitionedRanksBitEqualScalarRanks) {
  // Per-rank partition boundaries must not disturb M-step equality either.
  data::LabeledDataset ld = data::paper_dataset(1000, 35);
  data::inject_missing(ld.dataset, 0.1, 12);
  const Model model = Model::default_model(ld.dataset);
  for (int rank = 0; rank < 3; ++rank) {
    const data::ItemRange part = data::block_partition(1000, 3, rank);
    Reducer ra, rb;
    EmWorker a(model, part, ra);
    EmWorker b(model, part, rb);
    Classification ca(model, 4), cb(model, 4);
    a.random_init(ca, 7, 0, EmConfig{});
    b.random_init(cb, 7, 0, EmConfig{});
    a.update_parameters(ca);
    b.update_parameters_scalar(cb);
    expect_bit_identical(a.statistics(), b.statistics());
    expect_bit_identical(ca.all_params(), cb.all_params());
  }
}

// ---- thread-count invariance ----

/// One converged run at a given thread count, reduced to its observable
/// outputs: final weights matrix, parameters, scores, and hard labels.
struct ThreadRun {
  std::vector<double> weights;
  std::vector<double> params;
  std::vector<double> class_weights;
  double log_likelihood = 0.0;
  double cs_score = 0.0;
  double bic_score = 0.0;
  std::vector<std::int32_t> labels;
};

ThreadRun run_with_config(const Model& model, std::size_t j,
                          std::uint64_t seed, EmConfig config) {
  Reducer identity;
  EmWorker worker(model, data::ItemRange{0, model.dataset().num_items()},
                  identity);
  Classification c(model, j);
  worker.random_init(c, seed, 0, config);
  worker.converge(c, config);
  ThreadRun run;
  const std::span<const double> w = worker.local_weights();
  run.weights.assign(w.begin(), w.end());
  const std::span<const double> p = c.all_params();
  run.params.assign(p.begin(), p.end());
  for (std::size_t k = 0; k < c.num_classes(); ++k)
    run.class_weights.push_back(c.weight(k));
  run.log_likelihood = c.log_likelihood;
  run.cs_score = c.cs_score;
  run.bic_score = c.bic_score;
  run.labels = assign_labels(c);
  return run;
}

ThreadRun run_with_threads(const Model& model, std::size_t j,
                           std::uint64_t seed, int threads) {
  EmConfig config;
  config.threads = threads;
  config.max_cycles = 25;
  return run_with_config(model, j, seed, config);
}

/// Converged EM trajectories must be bit-identical at 1, 2, and 4 threads:
/// the block-ordered partial fold makes every value a pure function of the
/// block size, not of the thread count (DESIGN.md §5).
void expect_thread_invariant(const Model& model, std::size_t j,
                             std::uint64_t seed) {
  const ThreadRun one = run_with_threads(model, j, seed, 1);
  for (const int threads : {2, 4}) {
    const ThreadRun t = run_with_threads(model, j, seed, threads);
    expect_bit_identical(t.weights, one.weights);
    expect_bit_identical(t.params, one.params);
    expect_bit_identical(t.class_weights, one.class_weights);
    ASSERT_EQ(t.log_likelihood, one.log_likelihood) << threads << " threads";
    ASSERT_EQ(t.cs_score, one.cs_score) << threads << " threads";
    ASSERT_EQ(t.bic_score, one.bic_score) << threads << " threads";
    ASSERT_EQ(t.labels, one.labels) << threads << " threads";
  }
}

TEST(ThreadInvariance, GaussianWithMissing) {
  data::LabeledDataset ld = data::paper_dataset(900, 41);
  data::inject_missing(ld.dataset, 0.15, 14);
  expect_thread_invariant(Model::default_model(ld.dataset), 4, 201);
}

TEST(ThreadInvariance, MultinomialWithMissing) {
  const std::vector<data::CategoricalComponent> mix = {
      {0.4, {{0.8, 0.1, 0.1}, {0.9, 0.1}}},
      {0.6, {{0.1, 0.1, 0.8}, {0.2, 0.8}}},
  };
  data::LabeledDataset ld = data::categorical_mixture(mix, 800, 42);
  data::inject_missing(ld.dataset, 0.1, 15);
  expect_thread_invariant(Model::default_model(ld.dataset), 3, 202);
}

TEST(ThreadInvariance, MultiNormal) {
  const double r = 0.85;
  const std::vector<data::CorrelatedComponent> mix = {
      {0.5, {0.0, 0.0}, {1.0, 0.0, r, std::sqrt(1 - r * r)}},
      {0.5, {4.0, 2.0}, {1.0, 0.0, -r, std::sqrt(1 - r * r)}},
  };
  const data::LabeledDataset ld = data::correlated_mixture(mix, 700, 43);
  expect_thread_invariant(Model::correlated_model(ld.dataset), 3, 203);
}

TEST(ThreadInvariance, LognormalWithMissing) {
  Dataset d(Schema({Attribute::real("mass", 0.01)}), 650);
  Xoshiro256ss rng(44);
  for (std::size_t i = 0; i < 650; ++i)
    d.set_real(i, 0, std::exp(1.0 + 0.5 * normal01(rng)));
  for (std::size_t i = 2; i < 650; i += 13) d.set_missing(i, 0);
  TermSpec spec;
  spec.kind = TermKind::kSingleLognormal;
  spec.attributes = {0};
  expect_thread_invariant(Model(d, {spec}), 3, 204);
}

TEST(ThreadInvariance, MixedModelWithIgnore) {
  std::vector<data::MixedComponent> mix(2);
  mix[0] = {0.6, {0.0, 1.0}, {1.0, 0.5}, {{0.9, 0.1}}};
  mix[1] = {0.4, {6.0, -1.0}, {1.0, 0.5}, {{0.1, 0.9}}};
  data::LabeledDataset ld = data::mixed_mixture(mix, 850, 45);
  data::inject_missing(ld.dataset, 0.1, 16);
  std::vector<TermSpec> specs = {
      {TermKind::kSingleNormal, {0}},
      {TermKind::kIgnore, {1}},
      {TermKind::kSingleMultinomial, {2}},
  };
  expect_thread_invariant(Model(ld.dataset, std::move(specs)), 3, 205);
}

TEST(ThreadInvariance, EnvVariableMatchesExplicitConfig) {
  // EmConfig::threads = 0 reads PAC_EM_THREADS; the trajectory must match
  // the same count requested explicitly.
  data::LabeledDataset ld = data::paper_dataset(500, 46);
  const Model model = Model::default_model(ld.dataset);
  const ThreadRun explicit_two = run_with_threads(model, 3, 206, 2);
  setenv("PAC_EM_THREADS", "2", 1);
  const ThreadRun via_env = run_with_threads(model, 3, 206, 0);
  unsetenv("PAC_EM_THREADS");
  expect_bit_identical(via_env.weights, explicit_two.weights);
  expect_bit_identical(via_env.params, explicit_two.params);
  ASSERT_EQ(via_env.cs_score, explicit_two.cs_score);
}

TEST(ThreadInvariance, ScalarOraclesAreAlsoThreadInvariant) {
  // The scalar E/M oracles share the blocked drivers, so they too must be
  // invariant — otherwise the equality tests would only hold at 1 thread.
  data::LabeledDataset ld = data::paper_dataset(600, 47);
  data::inject_missing(ld.dataset, 0.1, 17);
  const Model model = Model::default_model(ld.dataset);
  const data::ItemRange all{0, 600};
  std::vector<std::vector<double>> weights;
  std::vector<double> loglikes;
  for (const int threads : {1, 4}) {
    Reducer identity;
    EmWorker worker(model, all, identity);
    Classification c(model, 3);
    EmConfig config;
    config.threads = threads;
    worker.random_init(c, 207, 0, config);
    worker.update_parameters_scalar(c);
    loglikes.push_back(worker.update_wts_scalar(c));
    const std::span<const double> w = worker.local_weights();
    weights.emplace_back(w.begin(), w.end());
  }
  ASSERT_EQ(loglikes[0], loglikes[1]);
  expect_bit_identical(weights[0], weights[1]);
}

TEST(ThreadInvariance, DegenerateRowErrorIsDeterministic) {
  // Two degenerate items in different blocks: every thread count must
  // report the *lowest-indexed* one (block-ordered error fold).
  const std::size_t n = 600;  // > 2 blocks of 256
  Dataset d(Schema({Attribute::discrete("s", 2)}), n);
  for (std::size_t i = 0; i < n; ++i)
    d.set_discrete(i, 0, (i == 300 || i == 580) ? 1 : 0);
  const Model model = Model::default_model(d);
  const double inf = std::numeric_limits<double>::infinity();
  for (const int threads : {1, 2, 4}) {
    Reducer identity;
    EmWorker worker(model, data::ItemRange{0, n}, identity);
    Classification c(model, 2);
    EmConfig config;
    config.threads = threads;
    worker.random_init(c, 3, 0, config);
    worker.update_parameters(c);
    for (std::size_t k = 0; k < 2; ++k) c.param_block(k, 0)[1] = -inf;
    try {
      worker.update_wts(c);
      FAIL() << "expected DegenerateRowError at " << threads << " threads";
    } catch (const DegenerateRowError& e) {
      EXPECT_EQ(e.item, 300u) << threads << " threads";
    }
  }
}

// ---- report paths routed through the kernels ----

TEST(ReportKernels, MembershipMatchesScalarJoint) {
  const data::LabeledDataset ld = data::paper_dataset(300, 36);
  const Model model = Model::default_model(ld.dataset);
  Reducer identity;
  EmWorker worker(model, data::ItemRange{0, 300}, identity);
  Classification c(model, 3);
  EmConfig config;
  worker.random_init(c, 47, 0, config);
  worker.converge(c, config);
  for (std::size_t i = 0; i < 300; i += 13) {
    // Scalar joint row, normalized exactly as report.cpp does.
    std::vector<double> row(3);
    for (std::size_t k = 0; k < 3; ++k) {
      double lp = c.log_pi(k);
      for (std::size_t t = 0; t < model.num_terms(); ++t)
        lp += model.term(t).log_prob(i, c.param_block(k, t));
      row[k] = lp;
    }
    const double lse = logsumexp(row);
    for (double& v : row) v = std::exp(v - lse);
    const auto m = membership(c, i);
    expect_bit_identical(m, row);
  }
}

TEST(ReportKernels, AssignLabelsMatchesPerItemMembership) {
  const data::LabeledDataset ld = data::paper_dataset(600, 37);
  const Model model = Model::default_model(ld.dataset);
  Reducer identity;
  EmWorker worker(model, data::ItemRange{0, 600}, identity);
  Classification c(model, 4);
  EmConfig config;
  worker.random_init(c, 49, 0, config);
  worker.converge(c, config);
  const auto labels = assign_labels(c);
  ASSERT_EQ(labels.size(), 600u);
  for (std::size_t i = 0; i < 600; i += 29) {
    const auto m = membership(c, i);
    const auto best = static_cast<std::int32_t>(
        std::max_element(m.begin(), m.end()) - m.begin());
    EXPECT_EQ(labels[i], best) << "item " << i;
  }
}

// ---- degenerate-row guard ----

TEST(DegenerateRow, AllInfRowRaisesTypedErrorNamingItem) {
  Dataset d(Schema({Attribute::discrete("s", 2)}), 6);
  for (std::size_t i = 0; i < 6; ++i)
    d.set_discrete(i, 0, i == 4 ? 1 : 0);
  const Model model = Model::default_model(d);
  Reducer identity;
  EmWorker worker(model, data::ItemRange{0, 6}, identity);
  Classification c(model, 2);
  worker.random_init(c, 3, 0, EmConfig{});
  worker.update_parameters(c);
  // Zero-support symbol: both classes rule out symbol 1, so item 4's row
  // is -inf under every class.
  const double inf = std::numeric_limits<double>::infinity();
  for (std::size_t k = 0; k < 2; ++k) c.param_block(k, 0)[1] = -inf;
  try {
    worker.update_wts(c);
    FAIL() << "expected DegenerateRowError";
  } catch (const DegenerateRowError& e) {
    EXPECT_EQ(e.item, 4u);
    EXPECT_EQ(e.num_classes, 2u);
    EXPECT_NE(std::string(e.what()).find("item 4"), std::string::npos);
  }
  // The scalar oracle guards identically.
  EXPECT_THROW(worker.update_wts_scalar(c), DegenerateRowError);
}

TEST(DegenerateRow, FiniteRowsStillConverge) {
  // The guard must not fire on ordinary data (including missing values).
  data::LabeledDataset ld = data::paper_dataset(400, 39);
  data::inject_missing(ld.dataset, 0.2, 13);
  const Model model = Model::default_model(ld.dataset);
  Reducer identity;
  EmWorker worker(model, data::ItemRange{0, 400}, identity);
  Classification c(model, 3);
  EmConfig config;
  worker.random_init(c, 51, 0, config);
  EXPECT_NO_THROW(worker.converge(c, config));
}

// ---- seed-item draw fallback ----

TEST(SeedDraws, DefaultBudgetDistinctWhenPossible) {
  const CounterRng rng(123);
  for (std::uint64_t try_index = 0; try_index < 8; ++try_index) {
    const auto seeds = detail::draw_seed_items(rng, 16, 16, try_index);
    ASSERT_EQ(seeds.size(), 16u);
    const std::set<std::size_t> unique(seeds.begin(), seeds.end());
    // j == n: every item must be picked exactly once — the old fallback
    // pushed duplicates here and produced zero-separation classes.
    EXPECT_EQ(unique.size(), 16u) << "try " << try_index;
  }
}

TEST(SeedDraws, TinyPrimaryBudgetForcesDistinctFallback) {
  const CounterRng rng(7);
  // A budget of 1 draw forces the widened-stream fallback almost every
  // collision; seeds must still be distinct and in range.
  const auto seeds = detail::draw_seed_items(rng, 10, 10, 0, 1);
  ASSERT_EQ(seeds.size(), 10u);
  std::set<std::size_t> unique(seeds.begin(), seeds.end());
  EXPECT_EQ(unique.size(), 10u);
  for (const std::size_t s : seeds) EXPECT_LT(s, 10u);
}

TEST(SeedDraws, DeterministicAcrossCalls) {
  const CounterRng rng(99);
  const auto a = detail::draw_seed_items(rng, 50, 12, 3, 2);
  const auto b = detail::draw_seed_items(rng, 50, 12, 3, 2);
  EXPECT_EQ(a, b);
  // Different tries draw from different streams.
  const auto c = detail::draw_seed_items(rng, 50, 12, 4, 2);
  EXPECT_NE(a, c);
}

TEST(SeedDraws, MoreClassesThanItemsStillTerminates) {
  const CounterRng rng(5);
  const auto seeds = detail::draw_seed_items(rng, 3, 9, 0);
  ASSERT_EQ(seeds.size(), 9u);
  const std::set<std::size_t> unique(seeds.begin(), seeds.end());
  EXPECT_EQ(unique.size(), 3u);  // every item used before duplicates
  for (const std::size_t s : seeds) EXPECT_LT(s, 3u);
}

TEST(SeedDraws, CommonCaseMatchesHistoricalPrimaryStream) {
  // Collision-free draws must still come from the primary stream with the
  // historical (stream, index, counter) coordinates, so pre-fix EM
  // trajectories are preserved.
  const std::size_t n = 100000;
  const CounterRng rng(2024);
  const auto seeds = detail::draw_seed_items(rng, n, 4, 2);
  std::vector<std::size_t> expected;
  std::uint64_t draw = 0;
  while (expected.size() < 4) {
    const auto candidate = std::min(
        n - 1,
        static_cast<std::size_t>(
            rng.uniform(0x1A17 + 2, expected.size(), draw) *
            static_cast<double>(n)));
    ++draw;
    if (std::find(expected.begin(), expected.end(), candidate) ==
        expected.end())
      expected.push_back(candidate);
  }
  EXPECT_EQ(seeds, expected);
}

// ---- SIMD dispatch plumbing ----

TEST(SimdDispatch, EnvValueParsing) {
  // level() caches its PAC_SIMD resolution on first use, so the env policy
  // is tested through the pure parser the resolver calls.
  EXPECT_TRUE(simd::detail::env_value_enables(nullptr));
  EXPECT_TRUE(simd::detail::env_value_enables(""));
  EXPECT_TRUE(simd::detail::env_value_enables("1"));
  EXPECT_TRUE(simd::detail::env_value_enables("avx2"));
  EXPECT_FALSE(simd::detail::env_value_enables("0"));
  EXPECT_FALSE(simd::detail::env_value_enables("off"));
  EXPECT_FALSE(simd::detail::env_value_enables("OFF"));
  EXPECT_FALSE(simd::detail::env_value_enables("scalar"));
  EXPECT_FALSE(simd::detail::env_value_enables("false"));
  EXPECT_FALSE(simd::detail::env_value_enables("no"));
}

TEST(SimdDispatch, ScopedForceLevelClampsAndRestores) {
  const simd::Level ambient = simd::level();
  {
    simd::ScopedForceLevel scalar(simd::Level::kScalar);
    EXPECT_EQ(scalar.effective(), simd::Level::kScalar);
    EXPECT_EQ(simd::level(), simd::Level::kScalar);
    EXPECT_FALSE(simd::active());
    {
      // Nested non-scalar requests clamp to what the host supports.
      simd::ScopedForceLevel vec(simd::Level::kAvx2);
      EXPECT_EQ(vec.effective(), simd::detected_level());
      EXPECT_EQ(simd::level(), simd::detected_level());
    }
    EXPECT_EQ(simd::level(), simd::Level::kScalar);
  }
  EXPECT_EQ(simd::level(), ambient);
}

TEST(SimdDispatch, DescribeNamesTheActiveLevel) {
  simd::ScopedForceLevel scalar(simd::Level::kScalar);
  EXPECT_NE(std::string(simd::describe()).find("dispatch=scalar"),
            std::string::npos);
}

// ---- SIMD kernels vs the scalar oracle (default tier: memcmp) ----

/// All five term families over mixed data with missing values — the model
/// the per-family SIMD suites share.
Model mixed_five_family_model(data::LabeledDataset& ld) {
  std::vector<TermSpec> specs = {
      {TermKind::kSingleNormal, {0}},
      {TermKind::kIgnore, {1}},
      {TermKind::kSingleMultinomial, {2}},
  };
  return Model(ld.dataset, std::move(specs));
}

/// Per-family kernel outputs must be memcmp-equal between the forced-scalar
/// tier and the host's best vector tier.  Runs the term batch oracles under
/// both forced levels; on scalar-only hosts the two runs coincide and the
/// test degenerates to the plain kernel-equality check.
void expect_simd_matches_forced_scalar(const Model& model) {
  {
    simd::ScopedForceLevel vec(simd::Level::kAvx2);  // clamps to detected
    expect_term_batch_matches_scalar(model);
    expect_term_accumulate_matches_scalar(model);
  }
  {
    simd::ScopedForceLevel scalar(simd::Level::kScalar);
    expect_term_batch_matches_scalar(model);
    expect_term_accumulate_matches_scalar(model);
  }
}

TEST(SimdKernels, GaussianWithMissingMatchesOracleAtBothLevels) {
  data::LabeledDataset ld = data::paper_dataset(700, 61);
  data::inject_missing(ld.dataset, 0.2, 18);
  expect_simd_matches_forced_scalar(Model::default_model(ld.dataset));
}

TEST(SimdKernels, MultinomialWithMissingMatchesOracleAtBothLevels) {
  const std::vector<data::CategoricalComponent> mix = {
      {0.5, {{0.7, 0.2, 0.1}, {0.6, 0.4}}},
      {0.5, {{0.1, 0.2, 0.7}, {0.3, 0.7}}},
  };
  data::LabeledDataset ld = data::categorical_mixture(mix, 600, 62);
  data::inject_missing(ld.dataset, 0.2, 19);
  expect_simd_matches_forced_scalar(Model::default_model(ld.dataset));
  ModelConfig config;
  config.missing_as_extra_value = true;
  expect_simd_matches_forced_scalar(Model::default_model(ld.dataset, config));
}

TEST(SimdKernels, MultiNormalMatchesOracleAtBothLevels) {
  const double r = 0.8;
  const std::vector<data::CorrelatedComponent> mix = {
      {0.5, {0.0, 0.0}, {1.0, 0.0, r, std::sqrt(1 - r * r)}},
      {0.5, {3.0, 1.0}, {1.0, 0.0, -r, std::sqrt(1 - r * r)}},
  };
  const data::LabeledDataset ld = data::correlated_mixture(mix, 500, 63);
  expect_simd_matches_forced_scalar(Model::correlated_model(ld.dataset));
}

TEST(SimdKernels, LognormalWithMissingMatchesOracleAtBothLevels) {
  Dataset d(Schema({Attribute::real("x", 0.01)}), 400);
  Xoshiro256ss rng(64);
  for (std::size_t i = 0; i < 400; ++i)
    d.set_real(i, 0, std::exp(0.5 + 0.8 * normal01(rng)));
  for (std::size_t i = 0; i < 400; i += 9) d.set_missing(i, 0);
  TermSpec spec;
  spec.kind = TermKind::kSingleLognormal;
  spec.attributes = {0};
  expect_simd_matches_forced_scalar(Model(d, {spec}));
}

TEST(SimdKernels, FullEmBitEqualAcrossLevels) {
  // A converged EM run must be bit-identical with the vector kernels forced
  // on and forced off — the whole-trajectory form of the memcmp contract.
  data::LabeledDataset ld = data::mixed_mixture(
      [] {
        std::vector<data::MixedComponent> mix(2);
        mix[0] = {0.6, {0.0, 1.0}, {1.0, 0.5}, {{0.9, 0.1}}};
        mix[1] = {0.4, {6.0, -1.0}, {1.0, 0.5}, {{0.1, 0.9}}};
        return mix;
      }(),
      900, 65);
  data::inject_missing(ld.dataset, 0.1, 20);
  const Model model = mixed_five_family_model(ld);
  EmConfig config;
  config.max_cycles = 10;
  ThreadRun vec_run, scalar_run;
  {
    simd::ScopedForceLevel vec(simd::Level::kAvx2);
    vec_run = run_with_config(model, 3, 301, config);
  }
  {
    simd::ScopedForceLevel scalar(simd::Level::kScalar);
    scalar_run = run_with_config(model, 3, 301, config);
  }
  expect_bit_identical(vec_run.weights, scalar_run.weights);
  expect_bit_identical(vec_run.params, scalar_run.params);
  expect_bit_identical(vec_run.class_weights, scalar_run.class_weights);
  ASSERT_EQ(vec_run.log_likelihood, scalar_run.log_likelihood);
  ASSERT_EQ(vec_run.cs_score, scalar_run.cs_score);
  ASSERT_EQ(vec_run.labels, scalar_run.labels);
}

TEST(SimdKernels, ThreadInvariantWithVectorKernelsForced) {
  // {1, 2, 4} threads under the vector tier: the block-ordered fold and the
  // per-lane bit-identity compose, so the trajectories still memcmp-match.
  simd::ScopedForceLevel vec(simd::Level::kAvx2);
  data::LabeledDataset ld = data::paper_dataset(900, 66);
  data::inject_missing(ld.dataset, 0.15, 21);
  expect_thread_invariant(Model::default_model(ld.dataset), 4, 302);
}

// ---- fast-math tier: tolerance oracle ----

/// Relative-error check for the tolerance tier: every slot must agree with
/// the oracle to `rel` (relative to the larger magnitude, floored at 1).
void expect_close(std::span<const double> a, std::span<const double> b,
                  double rel) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double denom =
        std::max({std::abs(a[i]), std::abs(b[i]), 1.0});
    ASSERT_LE(std::abs(a[i] - b[i]), rel * denom) << "slot " << i;
  }
}

/// Per-family error bound: the reassociated fold differs from the in-order
/// oracle only by summation order over <= a few thousand items, so the
/// relative error stays within a few ulps times log2(n).
void expect_fast_accumulate_within_tolerance(const Model& model, double rel) {
  const std::size_t n = model.dataset().num_items();
  const data::ItemRange all{0, n};
  for (std::size_t t = 0; t < model.num_terms(); ++t) {
    const Term& term = model.term(t);
    if (term.stats_size() == 0) continue;
    const std::vector<double> w = synthetic_weights(n, 3);
    std::vector<double> exact(term.stats_size(), 0.125);
    std::vector<double> fast = exact;
    term.accumulate_batch(all, w.data(), 3, exact);
    term.accumulate_batch_fast(all, w.data(), 3, fast);
    expect_close(fast, exact, rel);
  }
}

TEST(FastMathKernels, GaussianAccumulateWithinTolerance) {
  data::LabeledDataset ld = data::paper_dataset(1100, 71);
  data::inject_missing(ld.dataset, 0.15, 22);
  expect_fast_accumulate_within_tolerance(Model::default_model(ld.dataset),
                                          1e-12);
}

TEST(FastMathKernels, LognormalAccumulateWithinTolerance) {
  Dataset d(Schema({Attribute::real("mass", 0.01)}), 800);
  Xoshiro256ss rng(72);
  for (std::size_t i = 0; i < 800; ++i)
    d.set_real(i, 0, std::exp(1.0 + 0.5 * normal01(rng)));
  for (std::size_t i = 3; i < 800; i += 11) d.set_missing(i, 0);
  TermSpec spec;
  spec.kind = TermKind::kSingleLognormal;
  spec.attributes = {0};
  expect_fast_accumulate_within_tolerance(Model(d, {spec}), 1e-12);
}

TEST(FastMathKernels, MultiNormalAccumulateWithinTolerance) {
  const double r = 0.85;
  const std::vector<data::CorrelatedComponent> mix = {
      {0.5, {0.0, 0.0}, {1.0, 0.0, r, std::sqrt(1 - r * r)}},
      {0.5, {4.0, 2.0}, {1.0, 0.0, -r, std::sqrt(1 - r * r)}},
  };
  const data::LabeledDataset ld = data::correlated_mixture(mix, 900, 73);
  expect_fast_accumulate_within_tolerance(Model::correlated_model(ld.dataset),
                                          1e-11);
}

TEST(FastMathKernels, MultinomialFastFoldIsExact) {
  // No fast kernel for the bincount family: accumulate_batch_fast must
  // defer to the bit-identical batch kernel.
  const std::vector<data::CategoricalComponent> mix = {
      {0.5, {{0.7, 0.2, 0.1}, {0.6, 0.4}}},
      {0.5, {{0.1, 0.2, 0.7}, {0.3, 0.7}}},
  };
  data::LabeledDataset ld = data::categorical_mixture(mix, 700, 74);
  data::inject_missing(ld.dataset, 0.2, 23);
  const Model model = Model::default_model(ld.dataset);
  const std::size_t n = ld.dataset.num_items();
  for (std::size_t t = 0; t < model.num_terms(); ++t) {
    const Term& term = model.term(t);
    const std::vector<double> w = synthetic_weights(n, 1);
    std::vector<double> exact(term.stats_size(), 0.0);
    std::vector<double> fast = exact;
    term.accumulate_batch(data::ItemRange{0, n}, w.data(), 1, exact);
    term.accumulate_batch_fast(data::ItemRange{0, n}, w.data(), 1, fast);
    expect_bit_identical(fast, exact);
  }
}

/// The fast tier's association is fixed by contract, not by the ISA: the
/// AVX2 and portable folds must agree bit-for-bit, not just to tolerance.
void expect_fast_fold_level_invariant(const Model& model) {
  const std::size_t n = model.dataset().num_items();
  for (std::size_t t = 0; t < model.num_terms(); ++t) {
    const Term& term = model.term(t);
    if (term.stats_size() == 0) continue;
    const std::vector<double> w = synthetic_weights(n, 3);
    std::vector<double> vec_stats(term.stats_size(), 0.125);
    std::vector<double> portable_stats = vec_stats;
    {
      simd::ScopedForceLevel vec(simd::Level::kAvx2);
      term.accumulate_batch_fast(data::ItemRange{0, n}, w.data(), 3,
                                 vec_stats);
    }
    {
      simd::ScopedForceLevel scalar(simd::Level::kScalar);
      term.accumulate_batch_fast(data::ItemRange{0, n}, w.data(), 3,
                                 portable_stats);
    }
    expect_bit_identical(vec_stats, portable_stats);
  }
}

TEST(FastMathKernels, FastFoldIsDispatchLevelInvariant) {
  data::LabeledDataset ld = data::paper_dataset(1000, 75);
  data::inject_missing(ld.dataset, 0.1, 24);
  expect_fast_fold_level_invariant(Model::default_model(ld.dataset));
  const double r = 0.7;
  const std::vector<data::CorrelatedComponent> mix = {
      {0.5, {0.0, 0.0}, {1.0, 0.0, r, std::sqrt(1 - r * r)}},
      {0.5, {2.0, 2.0}, {1.0, 0.0, -r, std::sqrt(1 - r * r)}},
  };
  const data::LabeledDataset cld = data::correlated_mixture(mix, 1000, 76);
  expect_fast_fold_level_invariant(Model::correlated_model(cld.dataset));
}

TEST(FastMathKernels, LogsumexpFastToleranceAndEdgeCases) {
  const double ninf = -std::numeric_limits<double>::infinity();
  EXPECT_EQ(logsumexp_fast(std::span<const double>{}), ninf);
  const std::vector<double> all_inf(7, ninf);
  EXPECT_EQ(logsumexp_fast(std::span<const double>(all_inf)), ninf);
  Xoshiro256ss rng(77);
  for (const std::size_t n : {1u, 2u, 3u, 4u, 5u, 8u, 13u, 32u, 100u}) {
    std::vector<double> v(n);
    for (double& x : v) x = -50.0 + 100.0 * normal01(rng);
    const double exact = logsumexp(std::span<const double>(v));
    const double fast = logsumexp_fast(std::span<const double>(v));
    ASSERT_LE(std::abs(fast - exact), 1e-13 * std::max(1.0, std::abs(exact)))
        << "n=" << n;
  }
}

TEST(FastMathKernels, ResolveFastMathPolicy) {
  EXPECT_TRUE(resolve_fast_math(1));
  EXPECT_FALSE(resolve_fast_math(-1));
  unsetenv("PAC_FAST_MATH");
  EXPECT_FALSE(resolve_fast_math(0));
  setenv("PAC_FAST_MATH", "1", 1);
  EXPECT_TRUE(resolve_fast_math(0));
  setenv("PAC_FAST_MATH", "on", 1);
  EXPECT_TRUE(resolve_fast_math(0));
  setenv("PAC_FAST_MATH", "0", 1);
  EXPECT_FALSE(resolve_fast_math(0));
  setenv("PAC_FAST_MATH", "off", 1);
  EXPECT_FALSE(resolve_fast_math(0));
  unsetenv("PAC_FAST_MATH");
}

// ---- fast-math tier: full-EM trajectory tolerance and determinism ----

ThreadRun run_fast_math(const Model& model, std::size_t j, std::uint64_t seed,
                        int threads, int fast_math, int cycles = 8) {
  EmConfig config;
  config.threads = threads;
  config.fast_math = fast_math;
  config.max_cycles = cycles;
  return run_with_config(model, j, seed, config);
}

TEST(FastMathEm, TrajectoryWithinToleranceOfExactTier) {
  data::LabeledDataset ld = data::paper_dataset(1000, 81);
  data::inject_missing(ld.dataset, 0.1, 25);
  const Model model = Model::default_model(ld.dataset);
  const ThreadRun exact = run_fast_math(model, 4, 401, 1, -1);
  const ThreadRun fast = run_fast_math(model, 4, 401, 1, 1);
  // A fixed modest cycle count keeps the comparison on the same EM path;
  // the reassociation error itself is ~1e-15 per fold and grows mildly.
  expect_close(fast.params, exact.params, 1e-7);
  expect_close(fast.class_weights, exact.class_weights, 1e-7);
  ASSERT_LE(std::abs(fast.log_likelihood - exact.log_likelihood),
            1e-7 * std::max(1.0, std::abs(exact.log_likelihood)));
  ASSERT_LE(std::abs(fast.cs_score - exact.cs_score),
            1e-7 * std::max(1.0, std::abs(exact.cs_score)));
  EXPECT_EQ(fast.labels, exact.labels);
}

TEST(FastMathEm, MultiNormalTrajectoryWithinTolerance) {
  const double r = 0.85;
  const std::vector<data::CorrelatedComponent> mix = {
      {0.5, {0.0, 0.0}, {1.0, 0.0, r, std::sqrt(1 - r * r)}},
      {0.5, {4.0, 2.0}, {1.0, 0.0, -r, std::sqrt(1 - r * r)}},
  };
  const data::LabeledDataset ld = data::correlated_mixture(mix, 800, 82);
  const Model model = Model::correlated_model(ld.dataset);
  const ThreadRun exact = run_fast_math(model, 3, 402, 1, -1);
  const ThreadRun fast = run_fast_math(model, 3, 402, 1, 1);
  expect_close(fast.params, exact.params, 1e-6);
  ASSERT_LE(std::abs(fast.cs_score - exact.cs_score),
            1e-6 * std::max(1.0, std::abs(exact.cs_score)));
  EXPECT_EQ(fast.labels, exact.labels);
}

TEST(FastMathEm, ThreadAndDispatchLevelInvariant) {
  // The fast tier is deterministic: {1, 4} threads x {vector, forced-scalar}
  // dispatch must all produce bit-identical trajectories — only the *exact*
  // tier comparison is a tolerance check.
  data::LabeledDataset ld = data::paper_dataset(900, 83);
  data::inject_missing(ld.dataset, 0.1, 26);
  const Model model = Model::default_model(ld.dataset);
  ThreadRun base;
  {
    simd::ScopedForceLevel vec(simd::Level::kAvx2);
    base = run_fast_math(model, 3, 403, 1, 1);
  }
  for (const int threads : {1, 4}) {
    for (const bool force_scalar : {false, true}) {
      if (threads == 1 && !force_scalar) continue;  // the base run
      const simd::Level request =
          force_scalar ? simd::Level::kScalar : simd::Level::kAvx2;
      simd::ScopedForceLevel guard(request);
      const ThreadRun run = run_fast_math(model, 3, 403, threads, 1);
      expect_bit_identical(run.weights, base.weights);
      expect_bit_identical(run.params, base.params);
      expect_bit_identical(run.class_weights, base.class_weights);
      ASSERT_EQ(run.log_likelihood, base.log_likelihood)
          << threads << " threads, force_scalar=" << force_scalar;
      ASSERT_EQ(run.cs_score, base.cs_score);
    }
  }
}

TEST(FastMathEm, EnvVariableMatchesExplicitConfig) {
  // EmConfig::fast_math = 0 reads PAC_FAST_MATH; the trajectory must match
  // the tier requested explicitly, bit for bit.
  data::LabeledDataset ld = data::paper_dataset(500, 84);
  const Model model = Model::default_model(ld.dataset);
  const ThreadRun explicit_fast = run_fast_math(model, 3, 404, 1, 1);
  setenv("PAC_FAST_MATH", "1", 1);
  const ThreadRun via_env = run_fast_math(model, 3, 404, 1, 0);
  unsetenv("PAC_FAST_MATH");
  expect_bit_identical(via_env.weights, explicit_fast.weights);
  expect_bit_identical(via_env.params, explicit_fast.params);
  ASSERT_EQ(via_env.cs_score, explicit_fast.cs_score);
}

}  // namespace
}  // namespace pac::ac
