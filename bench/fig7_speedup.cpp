// Figure 7: speedup T1/Tp of P-AutoClass, one series per dataset size.
//
// Paper shape to reproduce: near-linear speedup to 10 processors for the
// largest datasets; small datasets flatten early (the paper quotes ~4
// effective processors at 5 000 tuples, ~8 at 10 000) because the Allreduce
// latency stops amortizing over the shrinking per-rank partition.
#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace pac;
  const Cli cli(argc, argv);
  const bench::GridConfig grid = bench::parse_grid(cli);
  bench::print_grid_banner("Fig. 7 — speedup", grid);

  Table table("Fig. 7: speedup T1/Tp vs processors");
  std::vector<std::string> header = {"procs"};
  for (const auto size : grid.sizes)
    header.push_back(std::to_string(size) + " tuples");
  header.push_back("linear");
  table.set_header(header);

  std::vector<ac::Model> models;
  std::vector<data::LabeledDataset> datasets;
  for (const auto size : grid.sizes)
    datasets.push_back(
        data::paper_dataset(static_cast<std::size_t>(size), grid.seed));
  for (const auto& ds : datasets)
    models.push_back(ac::Model::default_model(ds.dataset));

  // T1 per dataset size (mean over repeats, like the paper).
  std::vector<double> t1;
  for (const auto& model : models)
    t1.push_back(bench::mean_elapsed(model, 1, grid));

  for (const auto procs : grid.procs) {
    std::vector<std::string> row = {std::to_string(procs)};
    for (std::size_t s = 0; s < models.size(); ++s) {
      const double tp =
          procs == 1 ? t1[s]
                     : bench::mean_elapsed(models[s],
                                           static_cast<int>(procs), grid);
      row.push_back(format_fixed(t1[s] / tp, 2));
    }
    row.push_back(format_fixed(static_cast<double>(procs), 2));
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  return 0;
}
