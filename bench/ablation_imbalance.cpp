// Load-balance ablation — the paper's Sec. 3 claim: the SPMD split "does
// not have load balancing problems because each processor executes the same
// code on data of equal size".
//
// We verify the flip side: force rank 0 to hold `skew` times the average
// partition and watch the whole machine slow down to the straggler's pace
// (every EM cycle ends in an Allreduce, so one overloaded rank gates all).
// Balanced partitioning is exactly the skew = 1 column.
#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace pac;
  const Cli cli(argc, argv);
  const bool smoke = bench::smoke_mode(cli);
  const auto items =
      static_cast<std::size_t>(cli.get_int("items", smoke ? 1000 : 20000));
  const auto procs = cli.get_int_list(
      "procs", smoke ? std::vector<std::int64_t>{2, 4}
                     : std::vector<std::int64_t>{2, 4, 8, 10});
  const auto j = static_cast<int>(cli.get_int("clusters", smoke ? 4 : 8));
  const auto cycles = static_cast<int>(cli.get_int("cycles", smoke ? 2 : 5));
  const std::vector<double> skews = {1.0, 1.5, 2.0, 3.0};
  const net::Machine machine =
      net::machine_by_name(cli.get_string("machine", "meiko-cs2"));

  const data::LabeledDataset ld = data::paper_dataset(items, 42);
  const ac::Model model = ac::Model::default_model(ld.dataset);

  std::cout << "# Load-imbalance ablation — " << items << " tuples, J=" << j
            << " on " << machine.name
            << " (skew = rank 0's share / average)\n";
  Table table("Seconds per base_cycle vs partition skew");
  std::vector<std::string> header = {"procs"};
  for (const double s : skews)
    header.push_back("skew " + format_fixed(s, 1));
  header.push_back("slowdown@3.0");
  table.set_header(header);

  for (const auto p : procs) {
    mp::World::Config cfg;
    cfg.num_ranks = static_cast<int>(p);
    cfg.machine = machine;
    mp::World world(cfg);
    std::vector<std::string> row = {std::to_string(p)};
    double balanced = 0.0, worst = 0.0;
    for (const double skew : skews) {
      core::ParallelConfig pcfg;
      pcfg.partition_skew = skew;
      const double t =
          core::measure_base_cycle(world, model, j, cycles, 42, pcfg)
              .seconds_per_cycle;
      if (skew == 1.0) balanced = t;
      worst = t;
      row.push_back(format_fixed(t, 4));
    }
    row.push_back(format_fixed(worst / balanced, 2) + "x");
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\nexpected: slowdown tracks the skew (the overloaded rank "
               "gates every Allreduce); the paper's equal split avoids "
               "this by construction.\n";
  return 0;
}
