// Shared plumbing for the figure-reproduction harnesses.
//
// Every figure binary runs the same protocol as the paper — the synthetic
// two-real-attribute dataset, the start_j_list grid, P = 1..10 on the
// modeled Meiko CS-2 — but at a reduced default scale so the whole bench
// suite finishes in seconds on a laptop.  Pass --paper for the full-scale
// grid (sizes to 100 000 tuples, start_j_list to 64); virtual times scale
// linearly with the knobs, so the reduced grid preserves every shape the
// paper reports.  EXPERIMENTS.md records both scales.
#pragma once

#include <cstdint>
#include <iostream>
#include <vector>

#include "autoclass/search.hpp"
#include "core/pautoclass.hpp"
#include "data/synth.hpp"
#include "mp/transport/env.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace pac::bench {

struct GridConfig {
  std::vector<std::int64_t> sizes;    // dataset sizes (tuples)
  std::vector<std::int64_t> procs;    // processor counts
  std::vector<int> start_j_list;      // the paper's class-count ladder
  int tries = 0;                      // classification tries per run
  int cycles = 0;                     // fixed EM cycles per try
  /// Repetitions with different search seeds, averaged (the paper repeats
  /// each classification 10 times and reports means).
  int repeats = 1;
  net::Machine machine;
  std::uint64_t seed = 42;
};

/// True when the harness runs in the CI smoke tier: tiny inputs so every
/// collective and EM path executes (under sanitizers) in well under a
/// second.  Every bench binary accepts --smoke.
inline bool smoke_mode(const Cli& cli) { return cli.get_bool("smoke", false); }

/// Under pac_launch the world size is fixed by the environment: collapse
/// the processor sweep to the real world size (a distributed bench measures
/// one configuration per launch).  No-op in a plain (modeled) run.
inline void finalize_grid(GridConfig& grid) {
  if (!mp::transport::pacnet_launched()) return;
  grid.procs = {static_cast<std::int64_t>(mp::transport::pacnet_size())};
}

/// Parse the common flags.  Defaults: reduced grid; --paper: the grid of
/// the paper's Sec. 4 (plus --machine to retarget the simulation);
/// --smoke: the tiny CI tier.
inline GridConfig parse_grid(const Cli& cli) {
  GridConfig grid;
  const bool paper = cli.get_bool("paper", false);
  if (smoke_mode(cli)) {
    grid.sizes = cli.get_int_list("sizes", {300});
    grid.start_j_list = {2, 4};
    grid.tries = static_cast<int>(cli.get_int("tries", 1));
    grid.cycles = static_cast<int>(cli.get_int("cycles", 2));
    grid.procs = cli.get_int_list("procs", {1, 2, 4});
    grid.machine =
        net::machine_by_name(cli.get_string("machine", "meiko-cs2"));
    grid.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
    grid.repeats = 1;
    if (cli.has("jlist")) {
      grid.start_j_list.clear();
      for (const auto j : cli.get_int_list("jlist", {}))
        grid.start_j_list.push_back(static_cast<int>(j));
    }
    finalize_grid(grid);
    return grid;
  }
  if (paper) {
    grid.sizes = cli.get_int_list(
        "sizes", {5000, 10000, 20000, 40000, 60000, 80000, 100000});
    grid.start_j_list = {2, 4, 8, 16, 24, 50, 64};
    grid.tries = static_cast<int>(cli.get_int("tries", 7));
    grid.cycles = static_cast<int>(cli.get_int("cycles", 30));
  } else {
    grid.sizes = cli.get_int_list("sizes", {1000, 2000, 5000, 10000});
    grid.start_j_list = {2, 4, 8};
    grid.tries = static_cast<int>(cli.get_int("tries", 3));
    grid.cycles = static_cast<int>(cli.get_int("cycles", 12));
  }
  grid.procs = cli.get_int_list("procs", {1, 2, 3, 4, 5, 6, 7, 8, 9, 10});
  if (cli.has("jlist")) {
    grid.start_j_list.clear();
    for (const auto j : cli.get_int_list("jlist", {}))
      grid.start_j_list.push_back(static_cast<int>(j));
  }
  grid.machine = net::machine_by_name(
      cli.get_string("machine", "meiko-cs2"));
  grid.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  grid.repeats = static_cast<int>(
      cli.get_int("repeats", cli.get_bool("paper", false) ? 10 : 1));
  finalize_grid(grid);
  return grid;
}

/// Search configuration for one grid cell (fixed-cycle EM so run lengths
/// are comparable across processor counts, exactly like the paper's
/// repeated classifications).
inline ac::SearchConfig search_for(const GridConfig& grid) {
  ac::SearchConfig config;
  config.start_j_list = grid.start_j_list;
  config.max_tries = grid.tries;
  config.seed = grid.seed;
  config.em.max_cycles = grid.cycles;
  config.em.min_cycles = 2;
  return config;
}

/// Modeled elapsed seconds of a full classification run of `model` on
/// `procs` processors of the grid's machine.
inline core::ParallelOutcome run_cell(const ac::Model& model, int procs,
                                      const GridConfig& grid,
                                      const core::ParallelConfig& pcfg = {}) {
  mp::World::Config cfg;
  cfg.num_ranks = procs;
  cfg.machine = grid.machine;
  mp::World world(cfg);
  return core::run_parallel_search(world, model, search_for(grid), pcfg);
}

/// Mean modeled elapsed time over grid.repeats repetitions with distinct
/// search seeds (the paper's averaged-classifications protocol).
inline double mean_elapsed(const ac::Model& model, int procs,
                           const GridConfig& grid,
                           const core::ParallelConfig& pcfg = {}) {
  mp::World::Config cfg;
  cfg.num_ranks = procs;
  cfg.machine = grid.machine;
  mp::World world(cfg);
  double total = 0.0;
  for (int rep = 0; rep < grid.repeats; ++rep) {
    ac::SearchConfig config = search_for(grid);
    config.seed = grid.seed + static_cast<std::uint64_t>(rep) * 7919;
    total += core::run_parallel_search(world, model, config, pcfg)
                 .stats.virtual_time;
  }
  return total / static_cast<double>(grid.repeats);
}

/// Emit the observability output of an instrumented run: the metrics
/// report to stdout and the chrome://tracing JSON to `<name>.trace.json`
/// (path overridable with --trace-json, empty string disables the file).
/// No-op when the run was not instrumented (PAUTOCLASS_TRACE unset or the
/// layer compiled out).
inline void emit_instrumentation(const Cli& cli, const mp::RunStats& stats,
                                 const std::string& name) {
  if (!stats.instrumented) return;
  const std::string json =
      cli.get_string("trace-json", name + ".trace.json");
  std::cout << "\n";
  core::write_reports(std::cout, stats, json);
  if (!json.empty())
    std::cout << "chrome trace (" << stats.events.size() << " events) -> "
              << json << "\n";
}

inline void print_grid_banner(const char* figure, const GridConfig& grid) {
  std::cout << "# " << figure << " — machine " << grid.machine.name
            << ", start_j_list {";
  for (std::size_t i = 0; i < grid.start_j_list.size(); ++i)
    std::cout << (i ? "," : "") << grid.start_j_list[i];
  std::cout << "}, tries " << grid.tries << ", cycles/try " << grid.cycles
            << ", repeats " << grid.repeats
            << "\n# (times are modeled multicomputer seconds; use --paper "
               "for the full-scale grid)\n";
}

}  // namespace pac::bench
