// Figure 6: average elapsed times of P-AutoClass on different numbers of
// processors, one series per dataset size.
//
// The paper plots h.mm.ss elapsed times for 5 000..100 000 tuples on a
// 10-processor Meiko CS-2.  This harness regenerates the table behind that
// plot on the modeled CS-2; expect the same shape: times drop with P, and
// the drop is steeper for larger datasets.
#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace pac;
  const Cli cli(argc, argv);
  const bench::GridConfig grid = bench::parse_grid(cli);
  bench::print_grid_banner("Fig. 6 — elapsed times", grid);

  Table table("Fig. 6: elapsed time [h.mm.ss] vs processors");
  std::vector<std::string> header = {"procs"};
  for (const auto size : grid.sizes)
    header.push_back(std::to_string(size) + " tuples");
  table.set_header(header);

  // Generate each dataset once; reuse it across processor counts.
  std::vector<data::LabeledDataset> datasets;
  std::vector<ac::Model> models;
  datasets.reserve(grid.sizes.size());
  for (const auto size : grid.sizes)
    datasets.push_back(
        data::paper_dataset(static_cast<std::size_t>(size), grid.seed));
  models.reserve(datasets.size());
  for (const auto& ds : datasets)
    models.push_back(ac::Model::default_model(ds.dataset));

  for (const auto procs : grid.procs) {
    std::vector<std::string> row = {std::to_string(procs)};
    for (const auto& model : models) {
      const double mean =
          bench::mean_elapsed(model, static_cast<int>(procs), grid);
      row.push_back(format_hms(mean) + " (" + format_fixed(mean, 1) + "s)");
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  return 0;
}
