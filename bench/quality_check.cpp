// Semantic-equality table: the paper's Sec. 3 design goal was "to maintain
// the same semantics of the sequential algorithm".  This harness runs the
// identical search on 1..10 modeled processors and prints the best score,
// class count, and clustering agreement with ground truth — every row must
// match the sequential row (up to floating-point reassociation).
#include "autoclass/report.hpp"
#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace pac;
  const Cli cli(argc, argv);
  const bool smoke = bench::smoke_mode(cli);
  const auto items =
      static_cast<std::size_t>(cli.get_int("items", smoke ? 300 : 4000));
  const auto procs = cli.get_int_list(
      "procs", smoke ? std::vector<std::int64_t>{1, 2, 4}
                     : std::vector<std::int64_t>{1, 2, 4, 6, 8, 10});
  const data::LabeledDataset ld = data::paper_dataset(items, 42);
  const ac::Model model = ac::Model::default_model(ld.dataset);

  ac::SearchConfig config;
  config.start_j_list = {3, 5};
  config.max_tries = static_cast<int>(cli.get_int("tries", smoke ? 1 : 2));
  config.em.max_cycles =
      static_cast<int>(cli.get_int("cycles", smoke ? 5 : 40));

  std::cout << "# Semantic equality across processor counts — " << items
            << " tuples (paper Sec. 3: parallel == sequential)\n";
  Table table("Best classification per processor count");
  table.set_header({"procs", "classes", "CS score", "log L", "ARI vs truth",
                    "elapsed [s]"});

  for (const auto p : procs) {
    mp::World::Config cfg;
    cfg.num_ranks = static_cast<int>(p);
    cfg.machine = net::meiko_cs2();
    mp::World world(cfg);
    const core::ParallelOutcome outcome =
        core::run_parallel_search(world, model, config);
    const ac::Classification& best = outcome.search.top();
    const auto labels = ac::assign_labels(best);
    table.add_row({std::to_string(p),
                   std::to_string(best.num_classes()),
                   format_fixed(best.cs_score, 4),
                   format_fixed(best.log_likelihood, 4),
                   format_fixed(data::adjusted_rand_index(ld.labels, labels),
                                4),
                   format_fixed(outcome.stats.virtual_time, 2)});
  }
  table.print(std::cout);
  std::cout << "\nexpected: every column except elapsed identical across "
               "rows (FP reassociation may move the last digit).\n";
  return 0;
}
