// Simulation-substrate sensitivity: how the speedup knee of Fig. 7 moves
// with the interconnect's latency and bandwidth.
//
// The paper measures one machine; the simulator lets us ask the natural
// follow-up — how sensitive are the conclusions to the network constants?
// The sweep multiplies the CS-2 latency (and, separately, the inverse
// bandwidth) by factors and reports speedup at P = 10 per dataset size.
// The shape claim of Fig. 7 survives as long as the knee ordering by
// dataset size is preserved, which this table demonstrates.
#include "bench/common.hpp"

namespace {

pac::net::Machine scaled_meiko(double latency_factor, double beta_factor) {
  pac::net::LinkParams link;
  link.latency = 80e-6 * latency_factor;
  link.byte_time = beta_factor / 50e6;
  link.send_overhead = 8e-6 * latency_factor;
  pac::net::Machine m = pac::net::meiko_cs2();
  m.name = "meiko-scaled";
  m.network = std::make_shared<pac::net::FatTreeNetwork>(link, 4, 2e-6);
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pac;
  const Cli cli(argc, argv);
  const bool smoke = bench::smoke_mode(cli);
  const auto sizes = cli.get_int_list(
      "sizes", smoke ? std::vector<std::int64_t>{300}
                     : std::vector<std::int64_t>{1000, 5000, 20000});
  const int procs = static_cast<int>(cli.get_int("procs", smoke ? 4 : 10));
  const auto j = static_cast<int>(cli.get_int("clusters", smoke ? 4 : 8));
  const auto cycles = static_cast<int>(cli.get_int("cycles", smoke ? 2 : 8));
  const std::vector<double> factors = {0.25, 1.0, 4.0, 16.0};

  std::cout << "# Network-sensitivity sweep: speedup at P=" << procs
            << " under scaled CS-2 latency (bandwidth fixed)\n";
  Table table("Speedup at P=10 vs latency scale");
  std::vector<std::string> header = {"latency x"};
  for (const auto s : sizes) header.push_back(std::to_string(s) + " tuples");
  table.set_header(header);

  for (const double f : factors) {
    std::vector<std::string> row = {format_fixed(f, 2)};
    for (const auto size : sizes) {
      const data::LabeledDataset ld =
          data::paper_dataset(static_cast<std::size_t>(size), 42);
      const ac::Model model = ac::Model::default_model(ld.dataset);
      const net::Machine machine = scaled_meiko(f, 1.0);
      auto run_with = [&](int p) {
        mp::World::Config cfg;
        cfg.num_ranks = p;
        cfg.machine = machine;
        mp::World world(cfg);
        return core::measure_base_cycle(world, model, j, cycles, 42)
            .seconds_per_cycle;
      };
      row.push_back(format_fixed(run_with(1) / run_with(procs), 2));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\nexpected: higher latency pulls every curve down, small "
               "datasets first — the Fig. 7 ordering (bigger dataset, "
               "better speedup) holds at every scale.\n";
  return 0;
}
