// Figure 8: scaleup of the base_cycle — time per iteration with the number
// of tuples per processor held fixed while processors grow.
//
// The paper holds 10 000 tuples/processor, grows from 1 to 10 processors,
// and asks P-AutoClass to form 8 and 16 clusters; the measured time per
// base_cycle iteration stays nearly flat between 0.3 and 0.7 seconds.  This
// harness runs the same protocol at full paper scale by default (it is
// cheap: only a handful of fixed cycles per point).
#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace pac;
  const Cli cli(argc, argv);
  const bool smoke = bench::smoke_mode(cli);
  const auto tuples_per_proc = static_cast<std::size_t>(
      cli.get_int("tuples-per-proc", smoke ? 300 : 10000));
  const auto cycles = static_cast<int>(cli.get_int("cycles", smoke ? 2 : 3));
  const auto procs = cli.get_int_list(
      "procs", smoke ? std::vector<std::int64_t>{1, 2, 4}
                     : std::vector<std::int64_t>{1, 2, 3, 4, 5, 6, 7, 8, 9,
                                                 10});
  std::vector<int> clusters;
  for (const auto j : cli.get_int_list(
           "clusters", smoke ? std::vector<std::int64_t>{4}
                             : std::vector<std::int64_t>{8, 16}))
    clusters.push_back(static_cast<int>(j));
  const net::Machine machine =
      net::machine_by_name(cli.get_string("machine", "meiko-cs2"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));

  std::cout << "# Fig. 8 — scaleup: " << tuples_per_proc
            << " tuples/processor on " << machine.name
            << " (paper band: 0.3-0.7 s per base_cycle, nearly flat)\n";

  Table table("Fig. 8: seconds per base_cycle iteration vs processors");
  std::vector<std::string> header = {"procs", "total tuples"};
  for (const int j : clusters)
    header.push_back(std::to_string(j) + " clusters");
  table.set_header(header);

  for (const auto p : procs) {
    const std::size_t n = tuples_per_proc * static_cast<std::size_t>(p);
    const data::LabeledDataset ld = data::paper_dataset(n, seed);
    const ac::Model model = ac::Model::default_model(ld.dataset);
    mp::World::Config cfg;
    cfg.num_ranks = static_cast<int>(p);
    cfg.machine = machine;
    mp::World world(cfg);
    std::vector<std::string> row = {std::to_string(p), std::to_string(n)};
    for (const int j : clusters) {
      const auto m = core::measure_base_cycle(world, model, j, cycles, seed);
      row.push_back(format_fixed(m.seconds_per_cycle, 3));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  return 0;
}
