// Communication breakdown: where the modeled time goes as processors grow.
//
// Supports the discussion around the paper's Fig. 7 ("the processors are
// not effectively used and the communication costs increase"): per
// processor count, the split of the slowest rank's virtual time into
// compute / network / idle, plus the Allreduce traffic that P-AutoClass
// generates per EM cycle.
//
// The traffic columns come from the instrumentation layer's *measured*
// per-collective counters (mp.allreduce.calls / .bytes, recorded by the
// Comm itself), not from a hand-derived formula; when tracing is compiled
// out (-DPAC_TRACE=OFF) the harness falls back to the analytic payload
// size and the World's coarse collective counts.
#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace pac;
  const Cli cli(argc, argv);
  const bool smoke = bench::smoke_mode(cli);
  const auto items =
      static_cast<std::size_t>(cli.get_int("items", smoke ? 300 : 5000));
  const auto procs = cli.get_int_list(
      "procs", smoke ? std::vector<std::int64_t>{1, 2, 4}
                     : std::vector<std::int64_t>{1, 2, 4, 8, 10});
  const auto j = static_cast<int>(cli.get_int("clusters", smoke ? 4 : 16));
  const auto cycles =
      static_cast<int>(cli.get_int("cycles", smoke ? 2 : 10));
  const net::Machine machine =
      net::machine_by_name(cli.get_string("machine", "meiko-cs2"));

  const data::LabeledDataset ld = data::paper_dataset(items, 42);
  const ac::Model model = ac::Model::default_model(ld.dataset);

  std::cout << "# Communication breakdown — " << items << " tuples, J=" << j
            << ", " << cycles << " base_cycles on " << machine.name << "\n";
  Table table("Virtual-time split of the slowest rank");
  table.set_header({"procs", "total [s]", "compute", "network", "idle",
                    "allreduces", "allreduce B/cycle", "mean wait [us]"});

  mp::RunStats last_stats;
  for (const auto p : procs) {
    mp::World::Config cfg;
    cfg.num_ranks = static_cast<int>(p);
    cfg.machine = machine;
    // Always instrument (when compiled in): this harness exists to report
    // measured communication, not modeled formulas.
    cfg.instrument = trace::compiled_in();
    mp::World world(cfg);
    const auto m = core::measure_base_cycle(world, model, j, cycles, 42);
    const auto& stats = m.stats;
    // Slowest rank = the one whose clock defines virtual_time.
    std::size_t slow = 0;
    for (std::size_t r = 1; r < stats.rank_finish.size(); ++r)
      if (stats.rank_finish[r] > stats.rank_finish[slow]) slow = r;
    const double total = stats.rank_finish[slow];
    const auto pct = [&](double v) {
      return format_fixed(total > 0 ? 100.0 * v / total : 0.0, 1) + "%";
    };

    double per_rank_allreduces = 0.0;
    double bytes_per_cycle = 0.0;
    double mean_wait_us = 0.0;
    if (stats.instrumented) {
      // Merged counters sum over ranks; divide by p for the per-rank view.
      const double calls = static_cast<double>(
          stats.metrics.counter_value("mp.allreduce.calls"));
      const double bytes = static_cast<double>(
          stats.metrics.counter_value("mp.allreduce.bytes"));
      per_rank_allreduces = calls / static_cast<double>(p);
      bytes_per_cycle =
          bytes / static_cast<double>(p) / static_cast<double>(cycles);
      if (const metrics::Histogram* h =
              stats.metrics.find_histogram("mp.allreduce.wait_seconds");
          h != nullptr && h->count() > 0)
        mean_wait_us = 1e6 * h->mean();
    } else {
      const auto allreduce_index =
          static_cast<std::size_t>(net::CollectiveKind::kAllreduce);
      per_rank_allreduces =
          static_cast<double>(stats.collective_calls[allreduce_index]) /
          static_cast<double>(p);
      // Statistics buffer + weight vector, per cycle, per rank contribution.
      bytes_per_cycle = static_cast<double>(
          (model.stats_per_class() * static_cast<std::size_t>(j) +
           static_cast<std::size_t>(j) + 1) *
          sizeof(double));
    }
    table.add_row(
        {std::to_string(p), format_fixed(total, 3),
         pct(stats.rank_compute[slow]), pct(stats.rank_comm[slow]),
         pct(stats.rank_idle[slow]),
         format_fixed(per_rank_allreduces / cycles, 1) + "/cycle",
         format_fixed(bytes_per_cycle, 0), format_fixed(mean_wait_us, 2)});
    if (p == procs.back()) last_stats = m.stats;
  }
  table.print(std::cout);

  // Full metrics report + chrome trace for the largest processor count.
  bench::emit_instrumentation(cli, last_stats, "comm_breakdown");
  return 0;
}
