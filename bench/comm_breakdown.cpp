// Communication breakdown: where the modeled time goes as processors grow.
//
// Supports the discussion around the paper's Fig. 7 ("the processors are
// not effectively used and the communication costs increase"): per
// processor count, the split of the slowest rank's virtual time into
// compute / network / idle, plus the Allreduce traffic that P-AutoClass
// generates per EM cycle.
#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace pac;
  const Cli cli(argc, argv);
  const auto items = static_cast<std::size_t>(cli.get_int("items", 5000));
  const auto procs = cli.get_int_list("procs", {1, 2, 4, 8, 10});
  const auto j = static_cast<int>(cli.get_int("clusters", 16));
  const auto cycles = static_cast<int>(cli.get_int("cycles", 10));
  const net::Machine machine =
      net::machine_by_name(cli.get_string("machine", "meiko-cs2"));

  const data::LabeledDataset ld = data::paper_dataset(items, 42);
  const ac::Model model = ac::Model::default_model(ld.dataset);

  std::cout << "# Communication breakdown — " << items << " tuples, J=" << j
            << ", " << cycles << " base_cycles on " << machine.name << "\n";
  Table table("Virtual-time split of the slowest rank");
  table.set_header({"procs", "total [s]", "compute", "network", "idle",
                    "allreduces", "allreduce bytes/cycle"});

  for (const auto p : procs) {
    mp::World::Config cfg;
    cfg.num_ranks = static_cast<int>(p);
    cfg.machine = machine;
    mp::World world(cfg);
    const auto m = core::measure_base_cycle(world, model, j, cycles, 42);
    const auto& stats = m.stats;
    // Slowest rank = the one whose clock defines virtual_time.
    std::size_t slow = 0;
    for (std::size_t r = 1; r < stats.rank_finish.size(); ++r)
      if (stats.rank_finish[r] > stats.rank_finish[slow]) slow = r;
    const double total = stats.rank_finish[slow];
    const auto pct = [&](double v) {
      return format_fixed(total > 0 ? 100.0 * v / total : 0.0, 1) + "%";
    };
    const auto allreduce_index =
        static_cast<std::size_t>(net::CollectiveKind::kAllreduce);
    const double per_rank_allreduces =
        static_cast<double>(stats.collective_calls[allreduce_index]) /
        static_cast<double>(p);
    // Statistics buffer + weight vector, per cycle, per rank contribution.
    const std::size_t bytes_per_cycle =
        (model.stats_per_class() * static_cast<std::size_t>(j) +
         static_cast<std::size_t>(j) + 1) *
        sizeof(double);
    table.add_row({std::to_string(p), format_fixed(total, 3),
                   pct(stats.rank_compute[slow]), pct(stats.rank_comm[slow]),
                   pct(stats.rank_idle[slow]),
                   format_fixed(per_rank_allreduces / cycles, 1) + "/cycle",
                   std::to_string(bytes_per_cycle)});
  }
  table.print(std::cout);
  return 0;
}
