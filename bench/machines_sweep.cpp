// Portability sweep — the paper's Sec. 6 claim: "our algorithm is easily
// portable to various MIMD distributed-memory parallel computers".
//
// Same workload, same code, three modeled machines: the paper's Meiko CS-2,
// a late-90s Ethernet PC cluster, and a contemporary RDMA cluster.  The
// table shows where the speedup curve's knee moves: a slower network pulls
// it left (Ethernet saturates early), a modern fabric pushes it right.
#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace pac;
  const Cli cli(argc, argv);
  const bool smoke = bench::smoke_mode(cli);
  const auto items =
      static_cast<std::size_t>(cli.get_int("items", smoke ? 300 : 8000));
  const auto procs = cli.get_int_list(
      "procs", smoke ? std::vector<std::int64_t>{1, 2}
                     : std::vector<std::int64_t>{1, 2, 4, 8, 10});
  std::vector<int> jlist = smoke ? std::vector<int>{2, 4}
                                 : std::vector<int>{2, 4, 8};
  if (cli.has("jlist")) {
    jlist.clear();
    for (const auto j : cli.get_int_list("jlist", {}))
      jlist.push_back(static_cast<int>(j));
  }

  const data::LabeledDataset ld = data::paper_dataset(items, 42);
  const ac::Model model = ac::Model::default_model(ld.dataset);

  ac::SearchConfig config;
  config.start_j_list = jlist;
  config.max_tries = static_cast<int>(cli.get_int("tries", smoke ? 1 : 3));
  config.em.max_cycles =
      static_cast<int>(cli.get_int("cycles", smoke ? 2 : 12));
  config.em.min_cycles = 2;

  const std::vector<std::string> machines = {"meiko-cs2", "pentium-cluster",
                                             "modern-cluster", "ideal"};

  std::cout << "# Machine sweep — " << items
            << " tuples, same code on four modeled machines (Sec. 6 "
               "portability claim)\n";
  Table table("Speedup T1/Tp by machine");
  std::vector<std::string> header = {"procs"};
  for (const auto& m : machines) header.push_back(m);
  table.set_header(header);

  std::vector<double> t1(machines.size(), 0.0);
  for (const auto p : procs) {
    std::vector<std::string> row = {std::to_string(p)};
    for (std::size_t m = 0; m < machines.size(); ++m) {
      mp::World::Config cfg;
      cfg.num_ranks = static_cast<int>(p);
      cfg.machine = net::machine_by_name(machines[m]);
      mp::World world(cfg);
      const double t =
          core::run_parallel_search(world, model, config).stats.virtual_time;
      if (p == 1) t1[m] = t;
      row.push_back(format_fixed(t1[m] / t, 2));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout
      << "\nshape check: the bus-network pentium-cluster trails the CS-2's "
         "fat tree; the modern cluster saturates much earlier because its "
         "cores sped up ~300x while collective latency shrank only ~40x — "
         "the same (small) dataset that kept a 1996 machine busy is "
         "communication-bound today.  Rerun with --items 200000 to see the "
         "modern machine scale.\n";
  return 0;
}
