// Design ablation: reduction granularity in update_parameters.
//
// The paper's Fig. 5 draws the Allreduce inside the per-class/per-attribute
// loops — one small reduction per (class, attribute).  The alternative is a
// single fused Allreduce of the packed statistics buffer.  The fine-grained
// layout pays one collective latency per term, so it falls behind as the
// class count and processor count grow; this harness quantifies that.
#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace pac;
  const Cli cli(argc, argv);
  const bool smoke = bench::smoke_mode(cli);
  const auto items =
      static_cast<std::size_t>(cli.get_int("items", smoke ? 300 : 6000));
  const auto procs = cli.get_int_list(
      "procs", smoke ? std::vector<std::int64_t>{2, 4}
                     : std::vector<std::int64_t>{2, 4, 8, 10});
  std::vector<int> clusters;
  for (const auto j : cli.get_int_list(
           "clusters", smoke ? std::vector<std::int64_t>{4}
                             : std::vector<std::int64_t>{8, 24, 64}))
    clusters.push_back(static_cast<int>(j));
  const auto cycles = static_cast<int>(cli.get_int("cycles", smoke ? 2 : 8));
  const net::Machine machine =
      net::machine_by_name(cli.get_string("machine", "meiko-cs2"));

  const data::LabeledDataset ld = data::paper_dataset(items, 42);
  const ac::Model model = ac::Model::default_model(ld.dataset);

  std::cout << "# Collective-granularity ablation — " << items
            << " tuples on " << machine.name
            << " (per-term = paper Fig. 5 layout)\n";
  Table table("Seconds per base_cycle: per-term vs fused Allreduce");
  std::vector<std::string> header = {"procs"};
  for (const int j : clusters) {
    header.push_back("J=" + std::to_string(j) + " per-term");
    header.push_back("J=" + std::to_string(j) + " fused");
    header.push_back("J=" + std::to_string(j) + " ratio");
  }
  table.set_header(header);

  for (const auto p : procs) {
    mp::World::Config cfg;
    cfg.num_ranks = static_cast<int>(p);
    cfg.machine = machine;
    mp::World world(cfg);
    std::vector<std::string> row = {std::to_string(p)};
    for (const int j : clusters) {
      core::ParallelConfig per_term;
      per_term.granularity = core::ReduceGranularity::kPerTerm;
      core::ParallelConfig fused;
      fused.granularity = core::ReduceGranularity::kFused;
      const double tp =
          core::measure_base_cycle(world, model, j, cycles, 42, per_term)
              .seconds_per_cycle;
      const double tf =
          core::measure_base_cycle(world, model, j, cycles, 42, fused)
              .seconds_per_cycle;
      row.push_back(format_fixed(tp, 4));
      row.push_back(format_fixed(tf, 4));
      row.push_back(format_fixed(tp / tf, 2) + "x");
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  return 0;
}
