// Trace demo: record every instrumented span of a few base_cycles and
// print a per-rank timeline summary plus the longest recorded spans.
// With --csv FILE the raw event log is dumped for offline tools; the
// chrome://tracing JSON goes to --trace-json (default
// trace_timeline.trace.json, load it at chrome://tracing or ui.perfetto.dev).
//
// This is the observability story for the simulator: the same run that
// produces Fig. 6-8 numbers can explain *where* each rank's time went.
// The events come from the instrumentation layer (util/trace.hpp) —
// per-rank ring buffers of virtual-time spans covering every collective,
// point-to-point message, and EM sub-phase.
#include <fstream>

#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace pac;
  const Cli cli(argc, argv);
  const bool smoke = bench::smoke_mode(cli);
  const auto items =
      static_cast<std::size_t>(cli.get_int("items", smoke ? 500 : 5000));
  const int procs = static_cast<int>(cli.get_int("procs", smoke ? 2 : 4));
  const auto j = static_cast<int>(cli.get_int("clusters", smoke ? 4 : 8));
  const auto cycles =
      static_cast<int>(cli.get_int("cycles", smoke ? 1 : 2));
  const net::Machine machine =
      net::machine_by_name(cli.get_string("machine", "meiko-cs2"));

  const data::LabeledDataset ld = data::paper_dataset(items, 42);
  const ac::Model model = ac::Model::default_model(ld.dataset);

  mp::World::Config cfg;
  cfg.num_ranks = procs;
  cfg.machine = machine;
  cfg.instrument = true;  // this binary *is* the tracing demo
  mp::World world(cfg);
  const auto m = core::measure_base_cycle(world, model, j, cycles, 42);

  std::cout << "# Trace of " << cycles << " base_cycles, " << items
            << " tuples, J=" << j << ", " << procs << " ranks on "
            << machine.name << "\n";

  if (!m.stats.instrumented) {
    std::cout << "tracing layer compiled out (-DPAC_TRACE=OFF): no events "
                 "to report\n";
    Table per_rank("Per-rank communication profile");
    per_rank.set_header({"rank", "comm [ms]", "idle [ms]", "finish [s]"});
    for (int r = 0; r < procs; ++r)
      per_rank.add_row({std::to_string(r),
                        format_fixed(1e3 * m.stats.rank_comm[r], 2),
                        format_fixed(1e3 * m.stats.rank_idle[r], 2),
                        format_fixed(m.stats.rank_finish[r], 4)});
    per_rank.print(std::cout);
    return 0;
  }

  std::cout << "# " << m.stats.events.size() << " events, virtual time "
            << format_fixed(m.stats.virtual_time, 4) << " s\n\n";

  // Per-rank summary.
  Table per_rank("Per-rank span profile");
  per_rank.set_header({"rank", "events", "comm [ms]", "idle [ms]",
                       "finish [s]"});
  std::vector<std::size_t> event_count(static_cast<std::size_t>(procs), 0);
  for (const trace::Event& e : m.stats.events)
    ++event_count[static_cast<std::size_t>(e.rank)];
  for (int r = 0; r < procs; ++r) {
    per_rank.add_row(
        {std::to_string(r),
         std::to_string(event_count[static_cast<std::size_t>(r)]),
         format_fixed(1e3 * m.stats.rank_comm[r], 2),
         format_fixed(1e3 * m.stats.rank_idle[r], 2),
         format_fixed(m.stats.rank_finish[r], 4)});
  }
  per_rank.print(std::cout);

  // The most expensive recorded spans.
  std::vector<trace::Event> events = m.stats.events;
  std::sort(events.begin(), events.end(),
            [](const trace::Event& a, const trace::Event& b) {
              return (a.end - a.start) > (b.end - b.start);
            });
  std::cout << "\n";
  Table top("Longest recorded spans");
  top.set_header({"rank", "category", "name", "start [ms]", "dur [us]"});
  for (std::size_t i = 0; i < events.size() && i < 8; ++i) {
    const trace::Event& e = events[i];
    top.add_row({std::to_string(e.rank), e.category, e.name,
                 format_fixed(1e3 * e.start, 3),
                 format_fixed(1e6 * (e.end - e.start), 1)});
  }
  top.print(std::cout);

  const std::string csv_path = cli.get_string("csv", "");
  if (!csv_path.empty()) {
    std::ofstream out(csv_path);
    PAC_REQUIRE_MSG(out.good(), "cannot write '" << csv_path << "'");
    trace::write_events_csv(out, m.stats.events);
    std::cout << "\nraw events -> " << csv_path << "\n";
  }

  bench::emit_instrumentation(cli, m.stats, "trace_timeline");
  return 0;
}
