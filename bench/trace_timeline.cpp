// Trace demo: record every communication event of a few base_cycles and
// print a per-rank timeline summary plus the busiest collective windows.
// With --csv FILE the raw event log is dumped for offline tools.
//
// This is the observability story for the simulator: the same run that
// produces Fig. 6-8 numbers can explain *where* each rank's time went.
#include <fstream>

#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace pac;
  const Cli cli(argc, argv);
  const auto items = static_cast<std::size_t>(cli.get_int("items", 5000));
  const int procs = static_cast<int>(cli.get_int("procs", 4));
  const auto j = static_cast<int>(cli.get_int("clusters", 8));
  const auto cycles = static_cast<int>(cli.get_int("cycles", 2));
  const net::Machine machine =
      net::machine_by_name(cli.get_string("machine", "meiko-cs2"));

  const data::LabeledDataset ld = data::paper_dataset(items, 42);
  const ac::Model model = ac::Model::default_model(ld.dataset);

  mp::World::Config cfg;
  cfg.num_ranks = procs;
  cfg.machine = machine;
  cfg.trace = true;
  mp::World world(cfg);
  const auto m = core::measure_base_cycle(world, model, j, cycles, 42);

  std::cout << "# Trace of " << cycles << " base_cycles, " << items
            << " tuples, J=" << j << ", " << procs << " ranks on "
            << machine.name << "\n";
  std::cout << "# " << m.stats.trace.size() << " events, virtual time "
            << format_fixed(m.stats.virtual_time, 4) << " s\n\n";

  // Per-rank summary.
  Table per_rank("Per-rank communication profile");
  per_rank.set_header({"rank", "events", "comm [ms]", "idle [ms]",
                       "finish [s]"});
  std::vector<std::size_t> event_count(procs, 0);
  for (const mp::TraceEvent& e : m.stats.trace)
    ++event_count[e.world_rank];
  for (int r = 0; r < procs; ++r) {
    per_rank.add_row({std::to_string(r), std::to_string(event_count[r]),
                      format_fixed(1e3 * m.stats.rank_comm[r], 2),
                      format_fixed(1e3 * m.stats.rank_idle[r], 2),
                      format_fixed(m.stats.rank_finish[r], 4)});
  }
  per_rank.print(std::cout);

  // The most expensive collective windows.
  std::vector<mp::TraceEvent> events = m.stats.trace;
  std::sort(events.begin(), events.end(),
            [](const mp::TraceEvent& a, const mp::TraceEvent& b) {
              return (a.end - a.start) > (b.end - b.start);
            });
  std::cout << "\n";
  Table top("Longest communication events");
  top.set_header({"rank", "op", "kind", "bytes", "start [ms]", "dur [us]"});
  for (std::size_t i = 0; i < events.size() && i < 8; ++i) {
    const mp::TraceEvent& e = events[i];
    top.add_row({std::to_string(e.world_rank), mp::to_string(e.op),
                 e.op == mp::TraceEvent::Op::kCollective
                     ? net::to_string(e.kind)
                     : "-",
                 std::to_string(e.bytes), format_fixed(1e3 * e.start, 3),
                 format_fixed(1e6 * (e.end - e.start), 1)});
  }
  top.print(std::cout);

  const std::string csv_path = cli.get_string("csv", "");
  if (!csv_path.empty()) {
    std::ofstream out(csv_path);
    PAC_REQUIRE_MSG(out.good(), "cannot write '" << csv_path << "'");
    mp::write_trace_csv(out, m.stats);
    std::cout << "\nraw events -> " << csv_path << "\n";
  }
  return 0;
}
