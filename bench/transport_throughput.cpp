// pacnet transport throughput — two harnesses in one binary.
//
// LAUNCHED MODE (under pac_launch, any backend): the classic table of
// ping-pong latency/bandwidth and allreduce cost over a message-size
// sweep, measured on whatever world the environment provides:
//
//   pac_launch -n 4 ./transport_throughput                    # sockets
//   pac_launch -n 4 --backend hybrid ./transport_throughput   # shm rings
//
// STANDALONE MODE (no PACNET_* env): a google-benchmark suite that builds
// loopback 2-rank worlds in-process (threads standing in for ranks, real
// fds underneath — the transport cannot tell) and measures the same-host
// routing win directly.  Series:
//
//   BM_TransportPingPongSocket/<bytes>   full socket mesh, loopback TCP-less
//                                        unix stream pair
//   BM_TransportPingPongHybrid/<bytes>   hybrid: data frames over the SPSC
//                                        shm ring, sockets idle
//   BM_TransportShmRingPingPong/<bytes>  the raw ShmChannel, no mailbox or
//                                        matching on top
//
// All series use manual time (rank 0's wall clock around a block of round
// trips), so the JSON report feeds scripts/bench_diff.py ratio pairs: the
// committed acceptance bar is >= 2x small-message round-trip throughput
// for hybrid over socket.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include <benchmark/benchmark.h>

#include "mp/comm.hpp"
#include "mp/transport/env.hpp"
#include "mp/transport/shm_ring.hpp"
#include "util/cli.hpp"
#include "util/simd.hpp"
#include "util/table.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

int pingpong_iters_for(std::size_t bytes, bool smoke) {
  if (smoke) return 4;
  const auto budget = static_cast<std::size_t>(1) << 22;  // ~4 MB per side
  return static_cast<int>(std::clamp<std::size_t>(budget / bytes, 8, 256));
}

int allreduce_iters_for(std::size_t bytes, bool smoke) {
  if (smoke) return 2;
  const auto budget = static_cast<std::size_t>(1) << 20;
  return static_cast<int>(std::clamp<std::size_t>(budget / bytes, 4, 64));
}

// ---------------------------------------------------------------------------
// Launched mode: the original table harness, unchanged protocol.

struct Row {
  std::size_t bytes = 0;
  int pingpong_iters = 0;
  double pingpong_seconds = 0.0;  // total for pingpong_iters round trips
  int allreduce_iters = 0;
  double allreduce_seconds = 0.0;  // total for allreduce_iters calls
};

int run_launched_table(pac::mp::World::Config cfg, int argc, char** argv) {
  using namespace pac;
  const Cli cli(argc, argv);
  const bool smoke = cli.get_bool("smoke", false);
  const bool primary = mp::transport::is_primary();
  const int procs = cfg.num_ranks;

  std::vector<std::size_t> sizes;
  for (const auto s : cli.get_int_list(
           "sizes", smoke ? std::vector<std::int64_t>{8, 1024, 65536}
                          : std::vector<std::int64_t>{8, 64, 1024, 16384,
                                                      262144, 1048576}))
    sizes.push_back(static_cast<std::size_t>(s));

  mp::World world(cfg);
  std::vector<Row> rows;
  std::mutex rows_mutex;
  std::string backend;

  world.run([&](mp::Comm& comm) {
    if (comm.rank() == 0) backend = comm.backend_name();
    constexpr int kTag = 7;
    for (const std::size_t bytes : sizes) {
      Row row;
      row.bytes = bytes;
      row.pingpong_iters = pingpong_iters_for(bytes, smoke);
      std::vector<std::uint8_t> buf(bytes, 0xA5);
      comm.barrier();
      if (comm.size() >= 2) {
        const int warmup = smoke ? 1 : 4;
        if (comm.rank() == 0) {
          for (int i = 0; i < warmup; ++i) {
            comm.send<std::uint8_t>(1, kTag, buf);
            comm.recv<std::uint8_t>(1, kTag, buf);
          }
          const auto t0 = Clock::now();
          for (int i = 0; i < row.pingpong_iters; ++i) {
            comm.send<std::uint8_t>(1, kTag, buf);
            comm.recv<std::uint8_t>(1, kTag, buf);
          }
          row.pingpong_seconds = seconds_since(t0);
        } else if (comm.rank() == 1) {
          for (int i = 0; i < warmup + row.pingpong_iters; ++i) {
            comm.recv<std::uint8_t>(0, kTag, buf);
            comm.send<std::uint8_t>(0, kTag, buf);
          }
        }
      }
      comm.barrier();

      std::vector<double> v(std::max<std::size_t>(1, bytes / sizeof(double)),
                            1.0);
      row.allreduce_iters = allreduce_iters_for(bytes, smoke);
      comm.allreduce_inplace<double>(v, mp::ReduceOp::kSum);  // warmup
      comm.barrier();
      const auto t1 = Clock::now();
      for (int i = 0; i < row.allreduce_iters; ++i)
        comm.allreduce_inplace<double>(v, mp::ReduceOp::kSum);
      row.allreduce_seconds = seconds_since(t1);
      comm.barrier();

      if (comm.rank() == 0) {
        std::lock_guard<std::mutex> lock(rows_mutex);
        rows.push_back(row);
      }
    }
  });

  if (!primary) return 0;

  std::cout << "# transport_throughput — backend " << backend << ", " << procs
            << " processes (host wall-clock time)\n";
  Table table("pt2pt ping-pong (ranks 0<->1) and allreduce, by message size");
  table.set_header({"bytes", "rt lat us", "bw MB/s", "allreduce us"});
  for (const Row& row : rows) {
    const double rt_us = row.pingpong_iters > 0
                             ? row.pingpong_seconds * 1e6 /
                                   static_cast<double>(row.pingpong_iters)
                             : 0.0;
    // One-way payload bytes moved per round trip = 2 * bytes.
    const double bw =
        row.pingpong_seconds > 0.0
            ? 2.0 * static_cast<double>(row.bytes) *
                  static_cast<double>(row.pingpong_iters) /
                  row.pingpong_seconds / 1e6
            : 0.0;
    const double ar_us = row.allreduce_seconds * 1e6 /
                         static_cast<double>(row.allreduce_iters);
    table.add_row({std::to_string(row.bytes), format_fixed(rt_us, 1),
                   format_fixed(bw, 1), format_fixed(ar_us, 1)});
  }
  table.print(std::cout);
  return 0;
}

// ---------------------------------------------------------------------------
// Standalone mode: google-benchmark loopback worlds.

using pac::mp::Comm;
using pac::mp::World;

std::string unique_address() {
  static std::atomic<int> counter{0};
  return "unix:/tmp/pacnet_bench." + std::to_string(::getpid()) + "." +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

World::Config loopback_config(const std::string& address, int rank) {
  World::Config cfg;
  cfg.num_ranks = 2;
  cfg.backend = World::Config::Backend::kSocket;
  cfg.socket.address = address;
  cfg.socket.rank = rank;
  cfg.socket.size = 2;
  return cfg;
}

/// rank 0 <-> rank 1 ping-pong driven by the benchmark state on the main
/// thread (which IS rank 0); rank 1 is an echo thread.  Each state
/// iteration times one block of round trips; a control message tells the
/// echoer the block length (-1 = done), so the world survives the whole
/// measurement and the rendezvous cost never pollutes the numbers.
void pingpong_world_bench(benchmark::State& state, bool hybrid) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  const int block = pingpong_iters_for(bytes, /*smoke=*/false);
  constexpr int kCtlTag = 1;
  constexpr int kDataTag = 2;

  const std::string address = unique_address();
  World::Config cfg0 = loopback_config(address, 0);
  World::Config cfg1 = loopback_config(address, 1);
  if (hybrid) {
    static std::atomic<std::uint64_t> token_counter{1};
    const std::uint64_t token =
        ((static_cast<std::uint64_t>(::getpid()) << 20) ^
         token_counter.fetch_add(1)) |
        1u;
    const pac::mp::transport::Fd seg =
        pac::mp::transport::ShmChannel::create_segment(
            pac::mp::transport::kDefaultShmRingBytes);
    for (World::Config* cfg : {&cfg0, &cfg1}) {
      cfg->backend = World::Config::Backend::kHybrid;
      cfg->shm.host_token = token;
      cfg->shm.fds = {{cfg == &cfg0 ? 1 : 0, ::dup(seg.get())}};
    }
  }

  std::thread echo([&cfg1, bytes] {
    World world(cfg1);
    world.run([bytes](Comm& comm) {
      std::vector<std::uint8_t> buf(bytes, 0x5A);
      for (;;) {
        const auto n = comm.recv_value<std::int64_t>(0, kCtlTag);
        if (n < 0) return;
        for (std::int64_t i = 0; i < n; ++i) {
          comm.recv<std::uint8_t>(0, kDataTag, buf);
          comm.send<std::uint8_t>(0, kDataTag, buf);
        }
      }
    });
  });

  {
    World world(cfg0);
    world.run([&](Comm& comm) {
      std::vector<std::uint8_t> buf(bytes, 0xA5);
      auto block_of = [&](std::int64_t n) {
        comm.send_value<std::int64_t>(1, kCtlTag, n);
        for (std::int64_t i = 0; i < n; ++i) {
          comm.send<std::uint8_t>(1, kDataTag, buf);
          comm.recv<std::uint8_t>(1, kDataTag, buf);
        }
      };
      block_of(std::min(block, 16));  // warmup
      for (auto _ : state) {
        const auto t0 = Clock::now();
        block_of(block);
        state.SetIterationTime(seconds_since(t0));
      }
      comm.send_value<std::int64_t>(1, kCtlTag, -1);
    });
    // World teardown exchanges shutdown frames with the peer: rank 0's
    // world must die BEFORE joining the echo thread, whose own teardown
    // blocks until rank 0's shutdown arrives.
  }
  echo.join();

  state.SetItemsProcessed(state.iterations() * block);
  state.SetBytesProcessed(state.iterations() * block * 2 *
                          static_cast<std::int64_t>(bytes));
  state.counters["round_trips_per_iter"] = static_cast<double>(block);
}

void BM_TransportPingPongSocket(benchmark::State& state) {
  pingpong_world_bench(state, /*hybrid=*/false);
}
void BM_TransportPingPongHybrid(benchmark::State& state) {
  pingpong_world_bench(state, /*hybrid=*/true);
}

/// The raw SPSC channel with no mailbox/matching above it: upper bound for
/// what the hybrid transport can reach, and the number that isolates ring
/// protocol changes from runtime changes.
void BM_TransportShmRingPingPong(benchmark::State& state) {
  using pac::mp::Message;
  using pac::mp::transport::Fd;
  using pac::mp::transport::ShmChannel;
  using pac::mp::transport::ShmChannelOptions;

  const auto bytes = static_cast<std::size_t>(state.range(0));
  const int block = pingpong_iters_for(bytes, /*smoke=*/false);
  const Fd seg =
      ShmChannel::create_segment(pac::mp::transport::kDefaultShmRingBytes);
  ShmChannel lower(Fd(::dup(seg.get())), /*lower=*/true, ShmChannelOptions{},
                   "bench lower");
  ShmChannel higher(Fd(::dup(seg.get())), /*lower=*/false, ShmChannelOptions{},
                    "bench higher");

  std::thread echo([&higher] {
    Message m;
    while (higher.recv_message(m)) higher.send_message(m);
  });

  Message ping;
  ping.context = 1;
  ping.source = 0;
  ping.tag = 2;
  ping.payload.assign(bytes, std::byte{0xA5});
  Message pong;
  auto block_of = [&](int n) {
    for (int i = 0; i < n; ++i) {
      lower.send_message(ping);
      lower.recv_message(pong);
    }
  };
  block_of(std::min(block, 16));  // warmup
  for (auto _ : state) {
    const auto t0 = Clock::now();
    block_of(block);
    state.SetIterationTime(seconds_since(t0));
  }
  lower.send_shutdown();
  echo.join();

  state.SetItemsProcessed(state.iterations() * block);
  state.SetBytesProcessed(state.iterations() * block * 2 *
                          static_cast<std::int64_t>(bytes));
  state.counters["round_trips_per_iter"] = static_cast<double>(block);
}

constexpr std::int64_t kSweep[] = {8, 64, 1024, 65536, 1048576};

void register_benches() {
  for (const std::int64_t bytes : kSweep) {
    benchmark::RegisterBenchmark("BM_TransportPingPongSocket",
                                 BM_TransportPingPongSocket)
        ->Arg(bytes)
        ->UseManualTime();
    benchmark::RegisterBenchmark("BM_TransportPingPongHybrid",
                                 BM_TransportPingPongHybrid)
        ->Arg(bytes)
        ->UseManualTime();
    benchmark::RegisterBenchmark("BM_TransportShmRingPingPong",
                                 BM_TransportShmRingPingPong)
        ->Arg(bytes)
        ->UseManualTime();
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pac;
  mp::World::Config cfg;
  cfg.num_ranks = 2;
  cfg.machine = net::ideal_machine();
  if (mp::transport::apply_env_backend(cfg))
    return run_launched_table(cfg, argc, argv);

  // Standalone: google-benchmark mode, same harness contract as
  // micro_kernels (--smoke maps to a minimal measurement time).
  std::vector<char*> args;
  bool smoke = false;
  for (int i = 0; i < argc; ++i) {
    if (i > 0 && std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      continue;
    }
    args.push_back(argv[i]);
  }
  static char min_time[] = "--benchmark_min_time=0.01";
  if (smoke) args.push_back(min_time);
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  register_benches();
  benchmark::AddCustomContext("pac_simd", simd::describe());
#ifdef NDEBUG
  benchmark::AddCustomContext("pac_build", "release");
#else
  benchmark::AddCustomContext("pac_build", "debug");
#endif
  std::fprintf(stderr,
               "transport_throughput: loopback 2-rank worlds "
               "(socket vs hybrid shm)\n");
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
