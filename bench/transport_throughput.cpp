// pacnet transport throughput: point-to-point latency/bandwidth and
// allreduce cost over a message-size sweep, on whichever backend the
// environment selects.  Unlike the figure harnesses this measures HOST
// wall-clock time of the runtime itself, so the same binary characterizes
// both backends:
//
//   ./transport_throughput [--smoke] [--procs 2]     # in-process backend
//   pac_launch -n 4 ./transport_throughput           # real sockets
//
// Protocol per message size: rank 0 <-> rank 1 ping-pong (round-trip
// latency, one-way bandwidth), then a world-wide allreduce of a double
// vector of the same size.  All ranks stay aligned with barriers so the
// collective call order matches on every rank.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <mutex>
#include <string>
#include <vector>

#include "mp/comm.hpp"
#include "mp/transport/env.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct Row {
  std::size_t bytes = 0;
  int pingpong_iters = 0;
  double pingpong_seconds = 0.0;  // total for pingpong_iters round trips
  int allreduce_iters = 0;
  double allreduce_seconds = 0.0;  // total for allreduce_iters calls
};

int pingpong_iters_for(std::size_t bytes, bool smoke) {
  if (smoke) return 4;
  const auto budget = static_cast<std::size_t>(1) << 22;  // ~4 MB per side
  return static_cast<int>(std::clamp<std::size_t>(budget / bytes, 8, 256));
}

int allreduce_iters_for(std::size_t bytes, bool smoke) {
  if (smoke) return 2;
  const auto budget = static_cast<std::size_t>(1) << 20;
  return static_cast<int>(std::clamp<std::size_t>(budget / bytes, 4, 64));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pac;
  const Cli cli(argc, argv);
  const bool smoke = cli.get_bool("smoke", false);
  const bool primary = mp::transport::is_primary();

  int procs = static_cast<int>(cli.get_int("procs", 2));
  mp::World::Config cfg;
  cfg.num_ranks = procs;
  cfg.machine = net::ideal_machine();
  const bool launched = mp::transport::apply_env_backend(cfg);
  if (launched) procs = cfg.num_ranks;

  std::vector<std::size_t> sizes;
  for (const auto s : cli.get_int_list(
           "sizes", smoke ? std::vector<std::int64_t>{8, 1024, 65536}
                          : std::vector<std::int64_t>{8, 64, 1024, 16384,
                                                      262144, 1048576}))
    sizes.push_back(static_cast<std::size_t>(s));

  mp::World world(cfg);
  std::vector<Row> rows;
  std::mutex rows_mutex;
  std::string backend;

  world.run([&](mp::Comm& comm) {
    if (comm.rank() == 0) backend = comm.backend_name();
    constexpr int kTag = 7;
    for (const std::size_t bytes : sizes) {
      Row row;
      row.bytes = bytes;
      row.pingpong_iters = pingpong_iters_for(bytes, smoke);
      std::vector<std::uint8_t> buf(bytes, 0xA5);
      comm.barrier();
      if (comm.size() >= 2) {
        const int warmup = smoke ? 1 : 4;
        if (comm.rank() == 0) {
          for (int i = 0; i < warmup; ++i) {
            comm.send<std::uint8_t>(1, kTag, buf);
            comm.recv<std::uint8_t>(1, kTag, buf);
          }
          const auto t0 = Clock::now();
          for (int i = 0; i < row.pingpong_iters; ++i) {
            comm.send<std::uint8_t>(1, kTag, buf);
            comm.recv<std::uint8_t>(1, kTag, buf);
          }
          row.pingpong_seconds = seconds_since(t0);
        } else if (comm.rank() == 1) {
          for (int i = 0; i < warmup + row.pingpong_iters; ++i) {
            comm.recv<std::uint8_t>(0, kTag, buf);
            comm.send<std::uint8_t>(0, kTag, buf);
          }
        }
      }
      comm.barrier();

      std::vector<double> v(std::max<std::size_t>(1, bytes / sizeof(double)),
                            1.0);
      row.allreduce_iters = allreduce_iters_for(bytes, smoke);
      comm.allreduce_inplace<double>(v, mp::ReduceOp::kSum);  // warmup
      comm.barrier();
      const auto t1 = Clock::now();
      for (int i = 0; i < row.allreduce_iters; ++i)
        comm.allreduce_inplace<double>(v, mp::ReduceOp::kSum);
      row.allreduce_seconds = seconds_since(t1);
      comm.barrier();

      if (comm.rank() == 0) {
        std::lock_guard<std::mutex> lock(rows_mutex);
        rows.push_back(row);
      }
    }
  });

  if (!primary) return 0;

  std::cout << "# transport_throughput — backend " << backend << ", "
            << procs << (launched ? " processes" : " rank threads")
            << " (host wall-clock time)\n";
  Table table("pt2pt ping-pong (ranks 0<->1) and allreduce, by message size");
  table.set_header({"bytes", "rt lat us", "bw MB/s", "allreduce us"});
  for (const Row& row : rows) {
    const double rt_us = row.pingpong_iters > 0
                             ? row.pingpong_seconds * 1e6 /
                                   static_cast<double>(row.pingpong_iters)
                             : 0.0;
    // One-way payload bytes moved per round trip = 2 * bytes.
    const double bw =
        row.pingpong_seconds > 0.0
            ? 2.0 * static_cast<double>(row.bytes) *
                  static_cast<double>(row.pingpong_iters) /
                  row.pingpong_seconds / 1e6
            : 0.0;
    const double ar_us = row.allreduce_seconds * 1e6 /
                         static_cast<double>(row.allreduce_iters);
    table.add_row({std::to_string(row.bytes), format_fixed(rt_us, 1),
                   format_fixed(bw, 1), format_fixed(ar_us, 1)});
  }
  table.print(std::cout);
  return 0;
}
