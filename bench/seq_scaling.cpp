// Section 3's motivating observation: sequential AutoClass runtime grows
// linearly with dataset size (the paper extrapolates 14K tuples ~ 3 h to
// 140K tuples ~ >1 day on a Pentium-class machine).
//
// This harness measures modeled sequential elapsed time across dataset
// sizes and reports the per-tuple rate, which should be constant (linear
// scaling), plus an extrapolation in the paper's style.
#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace pac;
  const Cli cli(argc, argv);
  const bool smoke = bench::smoke_mode(cli);
  const auto sizes = cli.get_int_list(
      "sizes", smoke ? std::vector<std::int64_t>{300, 600}
                     : std::vector<std::int64_t>{2000, 5000, 10000, 20000,
                                                 40000});
  const auto tries = static_cast<int>(cli.get_int("tries", smoke ? 1 : 2));
  const auto cycles = static_cast<int>(cli.get_int("cycles", smoke ? 2 : 20));
  std::vector<int> jlist = {2, 4, 8};
  if (cli.has("jlist")) {
    jlist.clear();
    for (const auto j : cli.get_int_list("jlist", {}))
      jlist.push_back(static_cast<int>(j));
  }
  const net::Machine machine =
      net::machine_by_name(cli.get_string("machine", "meiko-cs2"));

  std::cout << "# Sequential scaling (paper Sec. 3: time linear in dataset "
               "size)\n";
  Table table("Sequential AutoClass elapsed time vs dataset size");
  table.set_header({"tuples", "elapsed", "seconds", "us/tuple"});

  ac::SearchConfig config;
  config.start_j_list = jlist;
  config.max_tries = tries;
  config.em.max_cycles = cycles;
  config.em.min_cycles = 2;

  double first_rate = 0.0, last_seconds = 0.0;
  std::int64_t last_size = 0;
  for (const auto size : sizes) {
    const data::LabeledDataset ld =
        data::paper_dataset(static_cast<std::size_t>(size), 42);
    const ac::Model model = ac::Model::default_model(ld.dataset);
    mp::World::Config cfg;
    cfg.num_ranks = 1;
    cfg.machine = machine;
    mp::World world(cfg);
    const auto outcome = core::run_parallel_search(world, model, config);
    const double seconds = outcome.stats.virtual_time;
    const double rate = 1e6 * seconds / static_cast<double>(size);
    if (first_rate == 0.0) first_rate = rate;
    last_seconds = seconds;
    last_size = size;
    table.add_row({std::to_string(size), format_hms(seconds),
                   format_fixed(seconds, 1), format_fixed(rate, 1)});
  }
  table.print(std::cout);

  // The paper's 10x extrapolation: same protocol, 10x the data.
  std::cout << "\nlinear extrapolation to " << 10 * last_size
            << " tuples: " << format_hms(10.0 * last_seconds)
            << " (paper: 14K tuples > 3 h implies 140K > 1 day with its "
               "full search protocol)\n";
  std::cout << "per-tuple rate drift across sizes should be small (linear "
               "scaling): first "
            << format_fixed(first_rate, 2) << " us/tuple\n";
  return 0;
}
