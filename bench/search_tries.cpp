// search_tries — try-parallel search throughput (ParallelConfig::try_groups).
//
// Sweeps the number of sub-worlds G at a fixed total rank count on a
// comm-bound machine model (pentium-cluster, 120us latency): G sub-worlds
// of P/G ranks overlap tries that one P-rank world runs back to back, and
// narrowing the fold also shrinks each cycle's latency bill.  Reported
// time is the *modeled* virtual time of the whole search (UseManualTime),
// so committed baselines compare machine-independent ratios — the perf
// gate pairs BM_SearchTriesG1 against BM_SearchTriesG2 (expected >= 1.5x
// at G=2, the ISSUE acceptance bar).
//
//   ./search_tries --smoke --benchmark_out=out.json
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <vector>

#include "core/pautoclass.hpp"
#include "data/synth.hpp"
#include "util/simd.hpp"

namespace {

constexpr int kRanks = 4;

struct SearchFixture {
  pac::data::LabeledDataset labeled;
  pac::ac::Model model;
  pac::ac::SearchConfig config;

  SearchFixture()
      : labeled(pac::data::paper_dataset(300, 29)),
        model(pac::ac::Model::default_model(labeled.dataset)) {
    config.start_j_list = {2, 4, 6};
    config.max_tries = 6;
    config.em.max_cycles = 30;
    config.seed = 2024;
  }
};

const SearchFixture& fixture() {
  static SearchFixture f;
  return f;
}

/// One full try-parallel search on a fresh 4-rank pentium-cluster world;
/// the iteration time is the modeled elapsed seconds of the whole sweep.
void run_search_tries(benchmark::State& state, int groups) {
  const SearchFixture& f = fixture();
  pac::core::ParallelConfig parallel;
  parallel.try_groups = groups;
  std::int64_t tries = 0;
  for (auto _ : state) {
    pac::mp::World::Config cfg;
    cfg.num_ranks = kRanks;
    cfg.machine = pac::net::pentium_cluster();
    pac::mp::World world(cfg);
    const pac::core::ParallelOutcome outcome =
        pac::core::run_parallel_search(world, f.model, f.config, parallel);
    benchmark::DoNotOptimize(outcome.search.best.size());
    tries = outcome.search.tries;
    state.SetIterationTime(outcome.stats.virtual_time);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          tries);
  state.counters["tries"] = static_cast<double>(tries);
  state.counters["groups"] = static_cast<double>(groups);
}

void BM_SearchTriesG1(benchmark::State& state) { run_search_tries(state, 1); }
void BM_SearchTriesG2(benchmark::State& state) { run_search_tries(state, 2); }
void BM_SearchTriesG4(benchmark::State& state) { run_search_tries(state, 4); }
BENCHMARK(BM_SearchTriesG1)->UseManualTime();
BENCHMARK(BM_SearchTriesG2)->UseManualTime();
BENCHMARK(BM_SearchTriesG4)->UseManualTime();

}  // namespace

// Same harness contract as micro_kernels / serve_latency: --smoke maps to
// a minimal measurement time so CI tiers still execute every rung; the
// resolved SIMD level and build flavor ride in the JSON context.
int main(int argc, char** argv) {
  std::vector<char*> args;
  bool smoke = false;
  for (int i = 0; i < argc; ++i) {
    if (i > 0 && std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      continue;
    }
    args.push_back(argv[i]);
  }
  static char min_time[] = "--benchmark_min_time=0.01";
  if (smoke) args.push_back(min_time);
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::AddCustomContext("pac_simd", pac::simd::describe());
#ifdef NDEBUG
  benchmark::AddCustomContext("pac_build", "release");
#else
  benchmark::AddCustomContext("pac_build", "debug");
#endif
  std::fprintf(stderr, "search_tries: %s, %d ranks\n", pac::simd::describe(),
               kRanks);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
