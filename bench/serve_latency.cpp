// Serving-path benchmarks for pac_serve (DESIGN.md §7, EXPERIMENTS.md).
//
// Two tiers in one binary:
//
//  1. Google-benchmark micros over the in-process inference path, feeding
//     the ratio gate in scripts/bench_diff.py:
//       BM_ServePredictForeignScalar  per-row predict_labels (the scalar
//                                     log_prob_foreign reference path)
//       BM_ServePredictRowwise        predict_batch called one row at a
//                                     time (an unbatched server would pay
//                                     one Model::rebound per request)
//       BM_ServePredictBatched        predict_batch over the whole batch —
//                                     the micro-batched serving hot path
//     The gated ratios are batched-vs-rowwise (micro-batching win) and
//     batched-vs-foreign-scalar (kernel-tier win); both are within-run
//     ratios, so they survive machine changes like the other pairs.
//
//  2. A socket-level latency/QPS section: an in-process Server, client
//     threads at {1, 8, 64} concurrency each issuing synchronous predict
//     requests, then sustained QPS plus p50/p99/max request latency read
//     back from the server's own serve.request_seconds histogram (the
//     same metrics a production pac_serve reports via kStats).  Runs
//     before the google-benchmark suite; --smoke shrinks the request
//     counts and drops the 64-client rung so the section also fits under
//     sanitizers.
//
// Refreshing the committed baseline (bench/baselines/):
//   build/bench/serve_latency --benchmark_out_format=json
//       --benchmark_out=BENCH_<date>_serve_latency.json
#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "autoclass/report.hpp"
#include "autoclass/search.hpp"
#include "data/dataset.hpp"
#include "serve/client.hpp"
#include "serve/predictor.hpp"
#include "serve/server.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace {

using pac::data::Attribute;
using pac::data::Dataset;
using pac::data::Schema;

// Same five-family shape the serve tests use: the batch pays every term
// kind the kernel tier dispatches on (normal, multinomial, multi-normal
// block, lognormal, ignore).
Schema serve_schema() {
  return Schema({Attribute::real("x", 0.01), Attribute::discrete("d", 3),
                 Attribute::real("y", 0.01), Attribute::real("z", 0.01),
                 Attribute::real("w", 0.01), Attribute::real("junk", 0.01)});
}

Dataset serve_dataset(std::size_t n, std::uint64_t seed) {
  Dataset ds(serve_schema(), n);
  pac::Xoshiro256ss rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const bool c = i % 2 == 0;
    ds.set_real(i, 0, (c ? 0.0 : 6.0) + pac::normal01(rng));
    const double u = static_cast<double>(rng() >> 11) * 0x1.0p-53;
    ds.set_discrete(i, 1, c ? (u < 0.8 ? 0 : 1) : (u < 0.8 ? 2 : 1));
    const double g1 = pac::normal01(rng);
    const double g2 = pac::normal01(rng);
    ds.set_real(i, 2, (c ? -3.0 : 3.0) + g1);
    ds.set_real(i, 3, (c ? -3.0 : 3.0) + 0.8 * g1 + 0.6 * g2);
    ds.set_real(i, 4, std::exp((c ? 0.0 : 2.0) + 0.3 * pac::normal01(rng)));
    ds.set_real(i, 5, pac::normal01(rng));
  }
  return ds;
}

pac::ac::Model serve_model(const Dataset& ds) {
  std::vector<pac::ac::TermSpec> specs(5);
  specs[0] = {pac::ac::TermKind::kSingleNormal, {0}};
  specs[1] = {pac::ac::TermKind::kSingleMultinomial, {1}};
  specs[2] = {pac::ac::TermKind::kMultiNormal, {2, 3}};
  specs[3] = {pac::ac::TermKind::kSingleLognormal, {4}};
  specs[4] = {pac::ac::TermKind::kIgnore, {5}};
  return pac::ac::Model(ds, specs);
}

// One trained classification + probe batch shared by every benchmark:
// fitting dominates setup, so pay it once.
struct ServeFixture {
  Dataset train;
  pac::ac::Model model;
  pac::ac::Classification classification;
  Dataset probe;

  ServeFixture()
      : train(serve_dataset(2000, 41)),
        model(serve_model(train)),
        classification(fit(model)),
        probe(serve_dataset(256, 42)) {}

  static pac::ac::Classification fit(const pac::ac::Model& model) {
    pac::ac::SearchConfig config;
    config.start_j_list = {4};
    config.max_tries = 1;
    config.em.max_cycles = 20;
    config.seed = 1234;
    return pac::ac::sequential_search(model, config).top();
  }
};

const ServeFixture& fixture() {
  static const ServeFixture f;
  return f;
}

void BM_ServePredictForeignScalar(benchmark::State& state) {
  const ServeFixture& f = fixture();
  for (auto _ : state) {
    auto labels = pac::ac::predict_labels(f.classification, f.probe);
    benchmark::DoNotOptimize(labels.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.probe.num_items()));
}
BENCHMARK(BM_ServePredictForeignScalar);

void BM_ServePredictRowwise(benchmark::State& state) {
  const ServeFixture& f = fixture();
  for (auto _ : state) {
    for (std::size_t i = 0; i < f.probe.num_items(); ++i) {
      auto out =
          pac::serve::predict_batch(f.classification, f.probe.slice(i, i + 1),
                                    /*want_membership=*/false);
      benchmark::DoNotOptimize(out.labels.data());
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.probe.num_items()));
}
BENCHMARK(BM_ServePredictRowwise);

void BM_ServePredictBatched(benchmark::State& state) {
  const ServeFixture& f = fixture();
  for (auto _ : state) {
    auto out = pac::serve::predict_batch(f.classification, f.probe,
                                         /*want_membership=*/false);
    benchmark::DoNotOptimize(out.labels.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.probe.num_items()));
}
BENCHMARK(BM_ServePredictBatched);

// ---- socket-level latency/QPS section ----

struct LatencyResult {
  int clients = 0;
  std::uint64_t requests = 0;
  double seconds = 0.0;
  // NaN until the server histogram has samples (Histogram::quantile returns
  // NaN for an empty histogram); rendered as "n/a" rather than 0.
  double p50_us = std::numeric_limits<double>::quiet_NaN();
  double p99_us = std::numeric_limits<double>::quiet_NaN();
  double max_us = std::numeric_limits<double>::quiet_NaN();
};

/// Format a latency figure for the report line: "n/a" when unmeasured.
std::string fmt_us(double us) {
  if (std::isnan(us)) return "      n/a";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%9.1f", us);
  return buf;
}

LatencyResult run_latency_rung(const ServeFixture& f, int clients,
                               std::uint64_t requests_per_client,
                               std::size_t rows_per_request) {
  pac::serve::ServerOptions opts;
  opts.max_batch_rows = 256;
  opts.max_delay_ms = 0.2;
  pac::serve::Server server(f.model, f.classification, opts);
  server.start();

  const Dataset request = f.probe.slice(0, rows_per_request);
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      pac::serve::Client client(server.bound_address());
      for (std::uint64_t r = 0; r < requests_per_client; ++r) {
        auto resp = client.predict(request, /*want_membership=*/false);
        benchmark::DoNotOptimize(resp.labels.data());
      }
      (void)c;
    });
  }
  for (auto& t : threads) t.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  server.stop();

  LatencyResult res;
  res.clients = clients;
  res.requests =
      requests_per_client * static_cast<std::uint64_t>(clients);
  res.seconds = elapsed;
  const pac::metrics::Histogram* h =
      server.metrics().find_histogram("serve.request_seconds");
  if (h != nullptr) {
    // quantile() is NaN when no request was recorded; keep it that way.
    res.p50_us = h->quantile(0.50) * 1e6;
    res.p99_us = h->quantile(0.99) * 1e6;
    if (h->count() > 0) res.max_us = h->max() * 1e6;
  }
  return res;
}

bool run_latency_section(bool smoke) {
  const ServeFixture& f = fixture();
  const std::uint64_t per_client = smoke ? 20 : 200;
  const std::size_t rows = 8;
  std::vector<int> rungs = {1, 8};
  if (!smoke) rungs.push_back(64);
  std::fprintf(stderr,
               "serve_latency: socket tier (%llu requests/client, %zu "
               "rows/request)\n",
               static_cast<unsigned long long>(per_client), rows);
  for (int clients : rungs) {
    LatencyResult r;
    try {
      r = run_latency_rung(f, clients, per_client, rows);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "serve_latency: socket tier FAILED at %d clients: %s\n",
                   clients, e.what());
      return false;
    }
    if (r.requests == 0 || r.seconds <= 0.0) {
      std::fprintf(stderr, "serve_latency: socket tier produced no traffic\n");
      return false;
    }
    std::printf(
        "serve_latency: clients=%-3d requests=%-6llu qps=%10.1f "
        "p50_us=%s p99_us=%s max_us=%s\n",
        r.clients, static_cast<unsigned long long>(r.requests),
        static_cast<double>(r.requests) / r.seconds, fmt_us(r.p50_us).c_str(),
        fmt_us(r.p99_us).c_str(), fmt_us(r.max_us).c_str());
  }
  return true;
}

}  // namespace

// Same harness contract as micro_kernels: --smoke maps to a minimal
// measurement time (and a smaller socket tier) so CI's sanitizer tier
// still executes everything; the resolved SIMD level and the project's
// own build flavor are attached to the JSON context so committed
// baselines record what they measured.
int main(int argc, char** argv) {
  std::vector<char*> args;
  bool smoke = false;
  for (int i = 0; i < argc; ++i) {
    if (i > 0 && std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      continue;
    }
    args.push_back(argv[i]);
  }
  static char min_time[] = "--benchmark_min_time=0.01";
  if (smoke) args.push_back(min_time);
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::AddCustomContext("pac_simd", pac::simd::describe());
#ifdef NDEBUG
  benchmark::AddCustomContext("pac_build", "release");
#else
  benchmark::AddCustomContext("pac_build", "debug");
#endif
  std::fprintf(stderr, "serve_latency: %s\n", pac::simd::describe());
  if (!run_latency_section(smoke)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
