// Ingest-path benchmarks for the .pacb out-of-core data path (DESIGN.md
// §10): how fast rows get from disk into kernel-consumable columns.
//
//   BM_IngestAscii        parse the .hd2/.db2 decimal text pair (the
//                         pre-.pacb loader, kept as a compatibility shim)
//   BM_IngestBinary       load the same rows from .pacb fully resident —
//                         one pass of CRC-checked memcpy-width reads
//   BM_IngestChunkedScan  open the .pacb chunk-backed under a budget that
//                         covers ~half the file and stream every column
//                         in kernel-sized 256-item blocks (one full
//                         E-step's worth of data motion, evictions
//                         included)
//
// The gated ratio (scripts/bench_diff.py) is binary-over-ascii: the binary
// loader must stay well ahead of text parsing, since that gap is the whole
// reason pac_convert exists.  The chunked scan is tracked unpaired — its
// cost is dominated by pread + CRC, and the interesting check (bounded
// memory, identical bits) lives in the tests, not the timer.
//
// Refreshing the committed baseline (bench/baselines/):
//   build/bench/data_ingest --benchmark_out_format=json
//       --benchmark_out=BENCH_<date>_data_ingest.json
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "data/format.hpp"
#include "data/io.hpp"
#include "data/synth.hpp"

namespace {

using namespace pac;

constexpr std::size_t kRows = 20000;

/// One fixture dataset on disk in both formats, written once per process.
struct Files {
  std::string hd2, db2, pacb;
  std::size_t rows;

  Files() {
    const std::string prefix =
        "/tmp/pac_bench_ingest_" + std::to_string(::getpid());
    hd2 = prefix + ".hd2";
    db2 = prefix + ".db2";
    pacb = prefix + ".pacb";
    rows = kRows;
    const data::Dataset dataset = data::paper_dataset(rows, 7).dataset;
    data::write_header_file(hd2, dataset.schema());
    data::write_data_file(db2, dataset);
    data::format::write_pacb_file(pacb, dataset);
  }
  ~Files() {
    std::remove(hd2.c_str());
    std::remove(db2.c_str());
    std::remove(pacb.c_str());
  }
};

const Files& files() {
  static Files f;
  return f;
}

void BM_IngestAscii(benchmark::State& state) {
  const Files& f = files();
  for (auto _ : state) {
    data::OpenOptions options;
    options.header_path = f.hd2;
    benchmark::DoNotOptimize(data::open_dataset(f.db2, options));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(f.rows));
}
BENCHMARK(BM_IngestAscii);

void BM_IngestBinary(benchmark::State& state) {
  const Files& f = files();
  for (auto _ : state)
    benchmark::DoNotOptimize(data::open_dataset(f.pacb));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(f.rows));
}
BENCHMARK(BM_IngestBinary);

void BM_IngestChunkedScan(benchmark::State& state) {
  const Files& f = files();
  // Budget of half the file: every full scan must evict and reload.
  const std::size_t budget = f.rows * 2 * sizeof(double) / 2;
  double sink = 0.0;
  for (auto _ : state) {
    const data::Dataset dataset(data::ChunkedStore::open(f.pacb, budget));
    for (std::size_t a = 0; a < dataset.num_attributes(); ++a)
      for (std::size_t begin = 0; begin < f.rows; begin += 256) {
        const data::ItemRange range{begin, std::min(begin + 256, f.rows)};
        const auto view = dataset.real_block(a, range);
        sink += view[view.size() - 1];
      }
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(f.rows));
}
BENCHMARK(BM_IngestChunkedScan);

}  // namespace

// Same harness contract as micro_kernels: --smoke maps to a minimal
// measurement time so every loader path still executes under sanitizers.
int main(int argc, char** argv) {
  std::vector<char*> args;
  bool smoke = false;
  for (int i = 0; i < argc; ++i) {
    if (i > 0 && std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      continue;
    }
    args.push_back(argv[i]);
  }
  static char min_time[] = "--benchmark_min_time=0.01";
  if (smoke) args.push_back(min_time);
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
#ifdef NDEBUG
  benchmark::AddCustomContext("pac_build", "release");
#else
  benchmark::AddCustomContext("pac_build", "debug");
#endif
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
