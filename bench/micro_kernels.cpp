// google-benchmark micro suite: the numeric kernels and runtime primitives
// that dominate P-AutoClass's host-side cost.  Wall-clock (not virtual)
// time, for performance-regression tracking of the implementation itself.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <vector>

#include "autoclass/em.hpp"
#include "data/synth.hpp"
#include "mp/comm.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace {

using namespace pac;

void BM_LogSumExp(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Xoshiro256ss rng(1);
  std::vector<double> v(n);
  for (double& x : v) x = uniform_in(rng, -30.0, 0.0);
  for (auto _ : state) benchmark::DoNotOptimize(logsumexp(v));
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_LogSumExp)->Arg(8)->Arg(64)->Arg(512);

void BM_LogSumExpFast(benchmark::State& state) {
  // The reassociated 4-lane fold of the PAC_FAST_MATH tier.
  const auto n = static_cast<std::size_t>(state.range(0));
  Xoshiro256ss rng(1);
  std::vector<double> v(n);
  for (double& x : v) x = uniform_in(rng, -30.0, 0.0);
  for (auto _ : state) benchmark::DoNotOptimize(logsumexp_fast(v));
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_LogSumExpFast)->Arg(8)->Arg(64)->Arg(512);

void BM_KahanSum(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Xoshiro256ss rng(2);
  std::vector<double> v(n);
  for (double& x : v) x = uniform_in(rng, -1.0, 1.0);
  for (auto _ : state) {
    KahanSum k;
    for (const double x : v) k.add(x);
    benchmark::DoNotOptimize(k.value());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_KahanSum)->Arg(1024)->Arg(65536);

void BM_CounterRng(benchmark::State& state) {
  const CounterRng rng(3);
  std::uint64_t i = 0;
  for (auto _ : state) benchmark::DoNotOptimize(rng.uniform(1, i++));
}
BENCHMARK(BM_CounterRng);

void BM_Cholesky(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  Xoshiro256ss rng(4);
  std::vector<double> base(d * d, 0.0);
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = 0; j <= i; ++j)
      base[i * d + j] = base[j * d + i] = uniform_in(rng, -0.2, 0.2);
    base[i * d + i] += static_cast<double>(d);
  }
  for (auto _ : state) {
    std::vector<double> a = base;
    benchmark::DoNotOptimize(spd::cholesky(a, d));
  }
}
BENCHMARK(BM_Cholesky)->Arg(2)->Arg(8)->Arg(32);

void BM_NormalLogProb(benchmark::State& state) {
  const data::LabeledDataset ld = data::paper_dataset(10000, 5);
  const ac::Model model = ac::Model::default_model(ld.dataset);
  const std::vector<double> params = {0.0, 1.0, 0.0};
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.term(0).log_prob(i, params));
    i = (i + 1) % 10000;
  }
}
BENCHMARK(BM_NormalLogProb);

// ---- E-step kernel benches: batched update_wts vs the scalar oracle ----

/// Gaussian-heavy workload for the headline kernel-vs-scalar comparison:
/// 8 real attributes x 8 classes is 64 per-item log_prob evaluations per
/// E-step pass, the regime the batched term kernels were built for.
data::LabeledDataset gaussian_heavy_dataset(std::size_t n) {
  constexpr std::size_t kDim = 8;
  std::vector<data::GaussianComponent> mix(4);
  for (std::size_t c = 0; c < mix.size(); ++c) {
    mix[c].weight = 1.0;
    mix[c].mean.assign(kDim, 0.0);
    mix[c].sigma.assign(kDim, 1.0);
    for (std::size_t a = 0; a < kDim; ++a) {
      mix[c].mean[a] = static_cast<double>((c + a) % 4) * 2.5;
      mix[c].sigma[a] = 0.6 + 0.1 * static_cast<double>(a % 3);
    }
  }
  data::LabeledDataset ld = data::gaussian_mixture(mix, n, 17);
  data::inject_missing(ld.dataset, 0.02, 5);
  return ld;
}

/// One full E-step per iteration from a fixed post-M-step state.  `scalar`
/// selects the per-item reference path instead of the batch kernels;
/// `level` pins the SIMD dispatch for the whole measurement so the legacy
/// benches keep scalar-batch-kernel semantics on vector-capable hosts and
/// the *Simd variants measure the vector tier (clamped to what the host
/// supports, so they degenerate to the scalar numbers on scalar-only CPUs).
void run_update_wts(benchmark::State& state, const ac::Model& model,
                    std::size_t j, bool scalar,
                    simd::Level level = simd::Level::kScalar) {
  const simd::ScopedForceLevel pin(level);
  const std::size_t n = model.dataset().num_items();
  ac::Reducer identity;
  ac::EmWorker worker(model, data::ItemRange{0, n}, identity);
  ac::Classification c(model, j);
  ac::EmConfig config;
  config.fast_math = -1;  // pin the exact tier regardless of PAC_FAST_MATH
  worker.random_init(c, 7, 0, config);
  worker.update_parameters(c);
  for (auto _ : state)
    benchmark::DoNotOptimize(scalar ? worker.update_wts_scalar(c)
                                    : worker.update_wts(c));
  state.SetItemsProcessed(state.iterations() * n * j);
}

void BM_UpdateWtsGaussian(benchmark::State& state) {
  const data::LabeledDataset ld = gaussian_heavy_dataset(4000);
  run_update_wts(state, ac::Model::default_model(ld.dataset), 8, false);
}
BENCHMARK(BM_UpdateWtsGaussian);

void BM_UpdateWtsScalarGaussian(benchmark::State& state) {
  // The oracle on the identical workload: the kernel acceptance bar is
  // BM_UpdateWtsGaussian at >= 2x this throughput.
  const data::LabeledDataset ld = gaussian_heavy_dataset(4000);
  run_update_wts(state, ac::Model::default_model(ld.dataset), 8, true);
}
BENCHMARK(BM_UpdateWtsScalarGaussian);

void BM_UpdateWtsGaussianSimd(benchmark::State& state) {
  // The vectorized E-step on the headline workload; bit-identical results
  // to BM_UpdateWtsGaussian, measured at the host's best dispatch level.
  const data::LabeledDataset ld = gaussian_heavy_dataset(4000);
  run_update_wts(state, ac::Model::default_model(ld.dataset), 8, false,
                 simd::Level::kAvx2);
}
BENCHMARK(BM_UpdateWtsGaussianSimd);

void BM_UpdateWtsMultinomial(benchmark::State& state) {
  std::vector<data::CategoricalComponent> mix(3);
  for (std::size_t c = 0; c < mix.size(); ++c) {
    mix[c].weight = 1.0;
    for (std::size_t a = 0; a < 6; ++a) {
      std::vector<double> p(4, 0.15);
      p[(a + c) % 4] = 0.55;
      mix[c].probs.push_back(std::move(p));
    }
  }
  data::LabeledDataset ld = data::categorical_mixture(mix, 4000, 19);
  data::inject_missing(ld.dataset, 0.02, 5);
  run_update_wts(state, ac::Model::default_model(ld.dataset), 4, false);
}
BENCHMARK(BM_UpdateWtsMultinomial);

void BM_UpdateWtsMultiNormal(benchmark::State& state) {
  constexpr std::size_t kDim = 4;
  std::vector<data::CorrelatedComponent> mix(3);
  for (std::size_t c = 0; c < mix.size(); ++c) {
    mix[c].weight = 1.0;
    mix[c].mean.assign(kDim, static_cast<double>(c) * 3.0);
    mix[c].chol.assign(kDim * kDim, 0.0);
    for (std::size_t i = 0; i < kDim; ++i) {
      mix[c].chol[i * kDim + i] = 0.8;
      if (i > 0) mix[c].chol[i * kDim + i - 1] = 0.2;
    }
  }
  // No missing values: the multi_normal term requires complete rows.
  const data::LabeledDataset ld = data::correlated_mixture(mix, 4000, 21);
  run_update_wts(state, ac::Model::correlated_model(ld.dataset), 4, false);
}
BENCHMARK(BM_UpdateWtsMultiNormal);

void BM_UpdateWtsMultiNormalSimd(benchmark::State& state) {
  // Lane-parallel forward-solve E-step for the correlated block term.
  constexpr std::size_t kDim = 4;
  std::vector<data::CorrelatedComponent> mix(3);
  for (std::size_t c = 0; c < mix.size(); ++c) {
    mix[c].weight = 1.0;
    mix[c].mean.assign(kDim, static_cast<double>(c) * 3.0);
    mix[c].chol.assign(kDim * kDim, 0.0);
    for (std::size_t i = 0; i < kDim; ++i) {
      mix[c].chol[i * kDim + i] = 0.8;
      if (i > 0) mix[c].chol[i * kDim + i - 1] = 0.2;
    }
  }
  const data::LabeledDataset ld = data::correlated_mixture(mix, 4000, 21);
  run_update_wts(state, ac::Model::correlated_model(ld.dataset), 4, false,
                 simd::Level::kAvx2);
}
BENCHMARK(BM_UpdateWtsMultiNormalSimd);

void BM_UpdateWtsLognormal(benchmark::State& state) {
  const std::size_t n = 4000;
  data::Dataset d(data::Schema({data::Attribute::real("x", 0.01),
                                data::Attribute::real("y", 0.01)}),
                  n);
  Xoshiro256ss rng(23);
  for (std::size_t i = 0; i < n; ++i) {
    d.set_real(i, 0, std::exp(0.4 + 0.5 * normal01(rng)));
    d.set_real(i, 1, std::exp(-0.2 + 0.3 * normal01(rng)));
  }
  const ac::Model model(d, {{ac::TermKind::kSingleLognormal, {0}},
                            {ac::TermKind::kSingleLognormal, {1}}});
  run_update_wts(state, model, 4, false);
}
BENCHMARK(BM_UpdateWtsLognormal);

void BM_UpdateWtsMultinomialSimd(benchmark::State& state) {
  // Masked-gather table lookup E-step for the discrete term.
  std::vector<data::CategoricalComponent> mix(3);
  for (std::size_t c = 0; c < mix.size(); ++c) {
    mix[c].weight = 1.0;
    for (std::size_t a = 0; a < 6; ++a) {
      std::vector<double> p(4, 0.15);
      p[(a + c) % 4] = 0.55;
      mix[c].probs.push_back(std::move(p));
    }
  }
  data::LabeledDataset ld = data::categorical_mixture(mix, 4000, 19);
  data::inject_missing(ld.dataset, 0.02, 5);
  run_update_wts(state, ac::Model::default_model(ld.dataset), 4, false,
                 simd::Level::kAvx2);
}
BENCHMARK(BM_UpdateWtsMultinomialSimd);

void BM_UpdateWtsMixed(benchmark::State& state) {
  // Mixed real + discrete + ignored attribute: exercises every kernel
  // dispatch shape the default and explicit models produce.
  std::vector<data::MixedComponent> mix(2);
  for (std::size_t c = 0; c < mix.size(); ++c) {
    mix[c].weight = 1.0;
    mix[c].mean = {static_cast<double>(c) * 2.0, 1.0 - static_cast<double>(c)};
    mix[c].sigma = {1.0, 0.7};
    mix[c].probs = {{0.2 + 0.5 * static_cast<double>(c),
                     0.8 - 0.5 * static_cast<double>(c)}};
  }
  data::LabeledDataset ld = data::mixed_mixture(mix, 4000, 27);
  data::inject_missing(ld.dataset, 0.02, 5);
  const ac::Model model(ld.dataset, {{ac::TermKind::kSingleNormal, {0}},
                                     {ac::TermKind::kIgnore, {1}},
                                     {ac::TermKind::kSingleMultinomial, {2}}});
  run_update_wts(state, model, 4, false);
}
BENCHMARK(BM_UpdateWtsMixed);

// ---- M-step kernel benches: batched update_parameters vs the oracle ----

/// One full M-step per iteration from a fixed post-E-step state.  `scalar`
/// selects the per-item virtual accumulate chain instead of the
/// accumulate_batch kernels; `threads` sizes the intra-rank pool;
/// `fast_math` > 0 routes accumulation through the reassociated
/// accumulate_batch_fast folds (the tier the *FastMath variants measure);
/// `level` pins the SIMD dispatch for the measurement.  The default-tier
/// M-step fold is order-pinned and has no vector form, so the interesting
/// vector numbers here are the fast-tier ones.
void run_update_params(benchmark::State& state, const ac::Model& model,
                       std::size_t j, bool scalar, int threads = 1,
                       int fast_math = -1,
                       simd::Level level = simd::Level::kScalar) {
  const simd::ScopedForceLevel pin(level);
  const std::size_t n = model.dataset().num_items();
  ac::Reducer identity;
  ac::EmWorker worker(model, data::ItemRange{0, n}, identity);
  ac::Classification c(model, j);
  ac::EmConfig config;
  config.threads = threads;
  config.fast_math = fast_math;
  worker.random_init(c, 7, 0, config);
  worker.update_parameters(c);
  worker.update_wts(c);
  for (auto _ : state) {
    if (scalar) {
      worker.update_parameters_scalar(c);
    } else {
      worker.update_parameters(c);
    }
    benchmark::DoNotOptimize(c.all_params().data());
  }
  state.SetItemsProcessed(state.iterations() * n * j);
}

void BM_UpdateParamsGaussian(benchmark::State& state) {
  const data::LabeledDataset ld = gaussian_heavy_dataset(4000);
  run_update_params(state, ac::Model::default_model(ld.dataset), 8, false);
}
BENCHMARK(BM_UpdateParamsGaussian);

void BM_UpdateParamsGaussianFastMath(benchmark::State& state) {
  // The opt-in PAC_FAST_MATH tier on the headline M-step workload: the
  // vectorized moment folds, measured at the host's best dispatch level.
  const data::LabeledDataset ld = gaussian_heavy_dataset(4000);
  run_update_params(state, ac::Model::default_model(ld.dataset), 8, false,
                    /*threads=*/1, /*fast_math=*/1, simd::Level::kAvx2);
}
BENCHMARK(BM_UpdateParamsGaussianFastMath);

void BM_UpdateParamsScalarGaussian(benchmark::State& state) {
  // The oracle on the identical workload: the kernel acceptance bar is
  // BM_UpdateParamsGaussian at >= 2x this throughput at 1 thread.
  const data::LabeledDataset ld = gaussian_heavy_dataset(4000);
  run_update_params(state, ac::Model::default_model(ld.dataset), 8, true);
}
BENCHMARK(BM_UpdateParamsScalarGaussian);

void BM_UpdateParamsGaussianThreads4(benchmark::State& state) {
  // The hybrid layer on the same workload.  Wall-clock scaling tracks the
  // host's core count (a single-core container shows none); results are
  // bit-identical to the 1-thread bench by construction.
  const data::LabeledDataset ld = gaussian_heavy_dataset(4000);
  run_update_params(state, ac::Model::default_model(ld.dataset), 8, false,
                    4);
}
BENCHMARK(BM_UpdateParamsGaussianThreads4);

void BM_UpdateParamsMultinomial(benchmark::State& state) {
  std::vector<data::CategoricalComponent> mix(3);
  for (std::size_t c = 0; c < mix.size(); ++c) {
    mix[c].weight = 1.0;
    for (std::size_t a = 0; a < 6; ++a) {
      std::vector<double> p(4, 0.15);
      p[(a + c) % 4] = 0.55;
      mix[c].probs.push_back(std::move(p));
    }
  }
  data::LabeledDataset ld = data::categorical_mixture(mix, 4000, 19);
  data::inject_missing(ld.dataset, 0.02, 5);
  run_update_params(state, ac::Model::default_model(ld.dataset), 4, false);
}
BENCHMARK(BM_UpdateParamsMultinomial);

void BM_UpdateParamsMultiNormal(benchmark::State& state) {
  constexpr std::size_t kDim = 4;
  std::vector<data::CorrelatedComponent> mix(3);
  for (std::size_t c = 0; c < mix.size(); ++c) {
    mix[c].weight = 1.0;
    mix[c].mean.assign(kDim, static_cast<double>(c) * 3.0);
    mix[c].chol.assign(kDim * kDim, 0.0);
    for (std::size_t i = 0; i < kDim; ++i) {
      mix[c].chol[i * kDim + i] = 0.8;
      if (i > 0) mix[c].chol[i * kDim + i - 1] = 0.2;
    }
  }
  const data::LabeledDataset ld = data::correlated_mixture(mix, 4000, 21);
  run_update_params(state, ac::Model::correlated_model(ld.dataset), 4,
                    false);
}
BENCHMARK(BM_UpdateParamsMultiNormal);

void BM_UpdateParamsMultiNormalFastMath(benchmark::State& state) {
  // Fast-tier lane-parallel scatter accumulation for the block term.
  constexpr std::size_t kDim = 4;
  std::vector<data::CorrelatedComponent> mix(3);
  for (std::size_t c = 0; c < mix.size(); ++c) {
    mix[c].weight = 1.0;
    mix[c].mean.assign(kDim, static_cast<double>(c) * 3.0);
    mix[c].chol.assign(kDim * kDim, 0.0);
    for (std::size_t i = 0; i < kDim; ++i) {
      mix[c].chol[i * kDim + i] = 0.8;
      if (i > 0) mix[c].chol[i * kDim + i - 1] = 0.2;
    }
  }
  const data::LabeledDataset ld = data::correlated_mixture(mix, 4000, 21);
  run_update_params(state, ac::Model::correlated_model(ld.dataset), 4, false,
                    /*threads=*/1, /*fast_math=*/1, simd::Level::kAvx2);
}
BENCHMARK(BM_UpdateParamsMultiNormalFastMath);

void BM_UpdateParamsLognormal(benchmark::State& state) {
  const std::size_t n = 4000;
  data::Dataset d(data::Schema({data::Attribute::real("x", 0.01),
                                data::Attribute::real("y", 0.01)}),
                  n);
  Xoshiro256ss rng(23);
  for (std::size_t i = 0; i < n; ++i) {
    d.set_real(i, 0, std::exp(0.4 + 0.5 * normal01(rng)));
    d.set_real(i, 1, std::exp(-0.2 + 0.3 * normal01(rng)));
  }
  const ac::Model model(d, {{ac::TermKind::kSingleLognormal, {0}},
                            {ac::TermKind::kSingleLognormal, {1}}});
  run_update_params(state, model, 4, false);
}
BENCHMARK(BM_UpdateParamsLognormal);

void BM_UpdateParamsMixed(benchmark::State& state) {
  std::vector<data::MixedComponent> mix(2);
  for (std::size_t c = 0; c < mix.size(); ++c) {
    mix[c].weight = 1.0;
    mix[c].mean = {static_cast<double>(c) * 2.0, 1.0 - static_cast<double>(c)};
    mix[c].sigma = {1.0, 0.7};
    mix[c].probs = {{0.2 + 0.5 * static_cast<double>(c),
                     0.8 - 0.5 * static_cast<double>(c)}};
  }
  data::LabeledDataset ld = data::mixed_mixture(mix, 4000, 27);
  data::inject_missing(ld.dataset, 0.02, 5);
  const ac::Model model(ld.dataset, {{ac::TermKind::kSingleNormal, {0}},
                                     {ac::TermKind::kIgnore, {1}},
                                     {ac::TermKind::kSingleMultinomial, {2}}});
  run_update_params(state, model, 4, false);
}
BENCHMARK(BM_UpdateParamsMixed);

void BM_EmBaseCycle(benchmark::State& state) {
  // Host throughput of one full base_cycle (sequential), items x classes.
  const auto n = static_cast<std::size_t>(state.range(0));
  const int j = static_cast<int>(state.range(1));
  const data::LabeledDataset ld = data::paper_dataset(n, 6);
  const ac::Model model = ac::Model::default_model(ld.dataset);
  ac::Reducer identity;
  ac::EmWorker worker(model, data::ItemRange{0, n}, identity);
  ac::Classification c(model, static_cast<std::size_t>(j));
  worker.random_init(c, 7, 0, ac::EmConfig{});
  for (auto _ : state) {
    worker.update_parameters(c);
    benchmark::DoNotOptimize(worker.update_wts(c));
    worker.update_approximations(c);
  }
  state.SetItemsProcessed(state.iterations() * n * j);
}
BENCHMARK(BM_EmBaseCycle)->Args({2000, 4})->Args({2000, 16})->Args({10000, 8});

void BM_Allreduce(benchmark::State& state) {
  // Host-side cost of the deterministic allreduce (4 rank threads).
  const auto n = static_cast<std::size_t>(state.range(0));
  mp::World::Config cfg;
  cfg.num_ranks = 4;
  cfg.machine = net::ideal_machine();
  mp::World world(cfg);
  for (auto _ : state) {
    world.run([n](mp::Comm& comm) {
      std::vector<double> v(n, 1.0);
      for (int i = 0; i < 16; ++i)
        comm.allreduce_inplace<double>(v, mp::ReduceOp::kSum);
    });
  }
  state.SetItemsProcessed(state.iterations() * 16 * n);
}
BENCHMARK(BM_Allreduce)->Arg(16)->Arg(4096);

void BM_AllreduceScalarHot(benchmark::State& state) {
  // The EM hot path in miniature: thousands of tiny scalar allreduces per
  // search.  Guards the thread-local scratch reuse in the collective folds
  // (no per-call temporary vector).
  mp::World::Config cfg;
  cfg.num_ranks = 4;
  cfg.machine = net::ideal_machine();
  mp::World world(cfg);
  for (auto _ : state) {
    world.run([](mp::Comm& comm) {
      double acc = 1.0;
      for (int i = 0; i < 256; ++i)
        acc = comm.allreduce_scalar(acc, mp::ReduceOp::kMax);
      benchmark::DoNotOptimize(acc);
    });
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_AllreduceScalarHot);

/// Smoke-tier correctness gate for the scratch-buffer fold path: the small
/// collectives the EM loop hammers must still produce exact results after
/// the allocation-free rewrite.  Returns false (and prints) on mismatch.
bool check_scratch_fold_path() {
  mp::World::Config cfg;
  cfg.num_ranks = 4;
  cfg.machine = net::ideal_machine();
  mp::World world(cfg);
  std::atomic<int> failures{0};
  world.run([&failures](mp::Comm& comm) {
    for (int i = 1; i <= 64; ++i) {
      const double sum = comm.allreduce_scalar(static_cast<double>(i));
      if (sum != 4.0 * i) failures.fetch_add(1);
      const auto gathered = comm.allgather_value<int>(comm.rank() + i);
      for (int r = 0; r < comm.size(); ++r)
        if (gathered[static_cast<std::size_t>(r)] != r + i)
          failures.fetch_add(1);
    }
  });
  if (failures.load() != 0) {
    std::fprintf(stderr,
                 "micro_kernels: scratch fold check FAILED (%d mismatches)\n",
                 failures.load());
    return false;
  }
  return true;
}

/// Smoke-tier correctness gate for the batched E-step: update_wts and the
/// scalar oracle must produce bit-identical weights and log-likelihood on
/// the same workload the headline bench measures.
bool check_estep_kernel_equality() {
  const data::LabeledDataset ld = gaussian_heavy_dataset(1000);
  const ac::Model model = ac::Model::default_model(ld.dataset);
  ac::Reducer ra, rb;
  ac::EmWorker a(model, data::ItemRange{0, 1000}, ra);
  ac::EmWorker b(model, data::ItemRange{0, 1000}, rb);
  ac::Classification ca(model, 6), cb(model, 6);
  a.random_init(ca, 9, 0, ac::EmConfig{});
  b.random_init(cb, 9, 0, ac::EmConfig{});
  a.update_parameters(ca);
  b.update_parameters(cb);
  const double la = a.update_wts(ca);
  const double lb = b.update_wts_scalar(cb);
  const auto wa = a.local_weights();
  const auto wb = b.local_weights();
  if (la != lb || wa.size() != wb.size() ||
      std::memcmp(wa.data(), wb.data(), wa.size() * sizeof(double)) != 0) {
    std::fprintf(stderr,
                 "micro_kernels: E-step kernel-vs-scalar equality FAILED\n");
    return false;
  }
  return true;
}

/// Smoke-tier correctness gate for the batched M-step: update_parameters
/// and the scalar oracle must produce bit-identical statistics and
/// parameters on the bench workload, at 1 thread and through the pool.
bool check_mstep_kernel_equality() {
  const data::LabeledDataset ld = gaussian_heavy_dataset(1000);
  const ac::Model model = ac::Model::default_model(ld.dataset);
  std::vector<std::vector<double>> stats, params;
  struct Variant {
    bool scalar;
    int threads;
  };
  for (const Variant v :
       {Variant{false, 1}, Variant{true, 1}, Variant{false, 4}}) {
    ac::Reducer identity;
    ac::EmWorker worker(model, data::ItemRange{0, 1000}, identity);
    ac::Classification c(model, 6);
    ac::EmConfig config;
    config.threads = v.threads;
    worker.random_init(c, 9, 0, config);
    if (v.scalar) {
      worker.update_parameters_scalar(c);
    } else {
      worker.update_parameters(c);
    }
    const auto s = worker.statistics();
    stats.emplace_back(s.begin(), s.end());
    const auto p = c.all_params();
    params.emplace_back(p.begin(), p.end());
  }
  for (std::size_t v = 1; v < stats.size(); ++v) {
    if (stats[v].size() != stats[0].size() ||
        std::memcmp(stats[v].data(), stats[0].data(),
                    stats[0].size() * sizeof(double)) != 0 ||
        params[v].size() != params[0].size() ||
        std::memcmp(params[v].data(), params[0].data(),
                    params[0].size() * sizeof(double)) != 0) {
      std::fprintf(
          stderr,
          "micro_kernels: M-step kernel-vs-scalar equality FAILED (%zu)\n",
          v);
      return false;
    }
  }
  return true;
}

/// Smoke-tier correctness gate for the SIMD tier: the E-step under the
/// host's best dispatch level must be bit-identical to the forced-scalar
/// batch kernels on the bench workload.  Degenerates to a self-comparison
/// on scalar-only hosts (still exercises the dispatch plumbing).
bool check_simd_kernel_equality() {
  const data::LabeledDataset ld = gaussian_heavy_dataset(1000);
  const ac::Model model = ac::Model::default_model(ld.dataset);
  std::vector<std::vector<double>> weights;
  std::vector<double> loglikes;
  for (const pac::simd::Level level :
       {pac::simd::Level::kAvx2, pac::simd::Level::kScalar}) {
    const pac::simd::ScopedForceLevel pin(level);
    ac::Reducer identity;
    ac::EmWorker worker(model, data::ItemRange{0, 1000}, identity);
    ac::Classification c(model, 6);
    worker.random_init(c, 9, 0, ac::EmConfig{});
    worker.update_parameters(c);
    loglikes.push_back(worker.update_wts(c));
    const auto w = worker.local_weights();
    weights.emplace_back(w.begin(), w.end());
  }
  if (loglikes[0] != loglikes[1] || weights[0].size() != weights[1].size() ||
      std::memcmp(weights[0].data(), weights[1].data(),
                  weights[0].size() * sizeof(double)) != 0) {
    std::fprintf(stderr,
                 "micro_kernels: SIMD-vs-scalar E-step equality FAILED\n");
    return false;
  }
  return true;
}

/// Smoke-tier gate for the PAC_FAST_MATH tier: the reassociated M-step must
/// stay within tolerance of the exact fold AND be dispatch-level invariant
/// (the fixed association is part of the contract, so AVX2 and portable
/// fast folds must agree bit for bit).
bool check_fast_math_tolerance() {
  const data::LabeledDataset ld = gaussian_heavy_dataset(1000);
  const ac::Model model = ac::Model::default_model(ld.dataset);
  std::vector<std::vector<double>> stats;
  struct Variant {
    int fast_math;
    pac::simd::Level level;
  };
  for (const Variant v : {Variant{-1, pac::simd::Level::kScalar},
                          Variant{1, pac::simd::Level::kAvx2},
                          Variant{1, pac::simd::Level::kScalar}}) {
    const pac::simd::ScopedForceLevel pin(v.level);
    ac::Reducer identity;
    ac::EmWorker worker(model, data::ItemRange{0, 1000}, identity);
    ac::Classification c(model, 6);
    ac::EmConfig config;
    config.fast_math = v.fast_math;
    worker.random_init(c, 9, 0, config);
    worker.update_parameters(c);
    const auto s = worker.statistics();
    stats.emplace_back(s.begin(), s.end());
  }
  for (std::size_t i = 0; i < stats[0].size(); ++i) {
    const double denom =
        std::max(std::max(std::abs(stats[0][i]), std::abs(stats[1][i])), 1.0);
    if (std::abs(stats[1][i] - stats[0][i]) > 1e-10 * denom) {
      std::fprintf(stderr,
                   "micro_kernels: fast-math tolerance FAILED (slot %zu)\n",
                   i);
      return false;
    }
  }
  if (stats[1].size() != stats[2].size() ||
      std::memcmp(stats[1].data(), stats[2].data(),
                  stats[1].size() * sizeof(double)) != 0) {
    std::fprintf(
        stderr,
        "micro_kernels: fast-math dispatch-level invariance FAILED\n");
    return false;
  }
  return true;
}

}  // namespace

// BENCHMARK_MAIN() plus a --smoke flag: the CI tier maps it to a minimal
// measurement time so every kernel still executes once under sanitizers.
// --print-simd reports the resolved dispatch level and exits (used by
// scripts/check.sh to label its output).  The resolved level is also
// attached to the JSON context as "pac_simd" so committed baselines record
// what they measured.
int main(int argc, char** argv) {
  std::vector<char*> args;
  bool smoke = false;
  for (int i = 0; i < argc; ++i) {
    if (i > 0 && std::strcmp(argv[i], "--print-simd") == 0) {
      std::printf("%s\n", pac::simd::describe());
      return 0;
    }
    if (i > 0 && std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      continue;
    }
    args.push_back(argv[i]);
  }
  static char min_time[] = "--benchmark_min_time=0.01";
  if (smoke) args.push_back(min_time);
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::AddCustomContext("pac_simd", pac::simd::describe());
  // The project's own build flavor (context.library_build_type describes
  // the google-benchmark library, not this code).  bench_diff.py matches
  // candidate and baseline on this key: debug and release runs have very
  // different kernel-vs-oracle ratios.
#ifdef NDEBUG
  benchmark::AddCustomContext("pac_build", "release");
#else
  benchmark::AddCustomContext("pac_build", "debug");
#endif
  std::fprintf(stderr, "micro_kernels: %s\n", pac::simd::describe());
  if (smoke && !check_scratch_fold_path()) return 1;
  if (smoke && !check_estep_kernel_equality()) return 1;
  if (smoke && !check_mstep_kernel_equality()) return 1;
  if (smoke && !check_simd_kernel_equality()) return 1;
  if (smoke && !check_fast_math_tolerance()) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
