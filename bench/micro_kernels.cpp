// google-benchmark micro suite: the numeric kernels and runtime primitives
// that dominate P-AutoClass's host-side cost.  Wall-clock (not virtual)
// time, for performance-regression tracking of the implementation itself.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <vector>

#include "autoclass/em.hpp"
#include "data/synth.hpp"
#include "mp/comm.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace {

using namespace pac;

void BM_LogSumExp(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Xoshiro256ss rng(1);
  std::vector<double> v(n);
  for (double& x : v) x = uniform_in(rng, -30.0, 0.0);
  for (auto _ : state) benchmark::DoNotOptimize(logsumexp(v));
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_LogSumExp)->Arg(8)->Arg(64)->Arg(512);

void BM_KahanSum(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Xoshiro256ss rng(2);
  std::vector<double> v(n);
  for (double& x : v) x = uniform_in(rng, -1.0, 1.0);
  for (auto _ : state) {
    KahanSum k;
    for (const double x : v) k.add(x);
    benchmark::DoNotOptimize(k.value());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_KahanSum)->Arg(1024)->Arg(65536);

void BM_CounterRng(benchmark::State& state) {
  const CounterRng rng(3);
  std::uint64_t i = 0;
  for (auto _ : state) benchmark::DoNotOptimize(rng.uniform(1, i++));
}
BENCHMARK(BM_CounterRng);

void BM_Cholesky(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  Xoshiro256ss rng(4);
  std::vector<double> base(d * d, 0.0);
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = 0; j <= i; ++j)
      base[i * d + j] = base[j * d + i] = uniform_in(rng, -0.2, 0.2);
    base[i * d + i] += static_cast<double>(d);
  }
  for (auto _ : state) {
    std::vector<double> a = base;
    benchmark::DoNotOptimize(spd::cholesky(a, d));
  }
}
BENCHMARK(BM_Cholesky)->Arg(2)->Arg(8)->Arg(32);

void BM_NormalLogProb(benchmark::State& state) {
  const data::LabeledDataset ld = data::paper_dataset(10000, 5);
  const ac::Model model = ac::Model::default_model(ld.dataset);
  const std::vector<double> params = {0.0, 1.0, 0.0};
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.term(0).log_prob(i, params));
    i = (i + 1) % 10000;
  }
}
BENCHMARK(BM_NormalLogProb);

void BM_EmBaseCycle(benchmark::State& state) {
  // Host throughput of one full base_cycle (sequential), items x classes.
  const auto n = static_cast<std::size_t>(state.range(0));
  const int j = static_cast<int>(state.range(1));
  const data::LabeledDataset ld = data::paper_dataset(n, 6);
  const ac::Model model = ac::Model::default_model(ld.dataset);
  ac::Reducer identity;
  ac::EmWorker worker(model, data::ItemRange{0, n}, identity);
  ac::Classification c(model, static_cast<std::size_t>(j));
  worker.random_init(c, 7, 0, ac::EmConfig{});
  for (auto _ : state) {
    worker.update_parameters(c);
    benchmark::DoNotOptimize(worker.update_wts(c));
    worker.update_approximations(c);
  }
  state.SetItemsProcessed(state.iterations() * n * j);
}
BENCHMARK(BM_EmBaseCycle)->Args({2000, 4})->Args({2000, 16})->Args({10000, 8});

void BM_Allreduce(benchmark::State& state) {
  // Host-side cost of the deterministic allreduce (4 rank threads).
  const auto n = static_cast<std::size_t>(state.range(0));
  mp::World::Config cfg;
  cfg.num_ranks = 4;
  cfg.machine = net::ideal_machine();
  mp::World world(cfg);
  for (auto _ : state) {
    world.run([n](mp::Comm& comm) {
      std::vector<double> v(n, 1.0);
      for (int i = 0; i < 16; ++i)
        comm.allreduce_inplace<double>(v, mp::ReduceOp::kSum);
    });
  }
  state.SetItemsProcessed(state.iterations() * 16 * n);
}
BENCHMARK(BM_Allreduce)->Arg(16)->Arg(4096);

void BM_AllreduceScalarHot(benchmark::State& state) {
  // The EM hot path in miniature: thousands of tiny scalar allreduces per
  // search.  Guards the thread-local scratch reuse in the collective folds
  // (no per-call temporary vector).
  mp::World::Config cfg;
  cfg.num_ranks = 4;
  cfg.machine = net::ideal_machine();
  mp::World world(cfg);
  for (auto _ : state) {
    world.run([](mp::Comm& comm) {
      double acc = 1.0;
      for (int i = 0; i < 256; ++i)
        acc = comm.allreduce_scalar(acc, mp::ReduceOp::kMax);
      benchmark::DoNotOptimize(acc);
    });
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_AllreduceScalarHot);

/// Smoke-tier correctness gate for the scratch-buffer fold path: the small
/// collectives the EM loop hammers must still produce exact results after
/// the allocation-free rewrite.  Returns false (and prints) on mismatch.
bool check_scratch_fold_path() {
  mp::World::Config cfg;
  cfg.num_ranks = 4;
  cfg.machine = net::ideal_machine();
  mp::World world(cfg);
  std::atomic<int> failures{0};
  world.run([&failures](mp::Comm& comm) {
    for (int i = 1; i <= 64; ++i) {
      const double sum = comm.allreduce_scalar(static_cast<double>(i));
      if (sum != 4.0 * i) failures.fetch_add(1);
      const auto gathered = comm.allgather_value<int>(comm.rank() + i);
      for (int r = 0; r < comm.size(); ++r)
        if (gathered[static_cast<std::size_t>(r)] != r + i)
          failures.fetch_add(1);
    }
  });
  if (failures.load() != 0) {
    std::fprintf(stderr,
                 "micro_kernels: scratch fold check FAILED (%d mismatches)\n",
                 failures.load());
    return false;
  }
  return true;
}

}  // namespace

// BENCHMARK_MAIN() plus a --smoke flag: the CI tier maps it to a minimal
// measurement time so every kernel still executes once under sanitizers.
int main(int argc, char** argv) {
  std::vector<char*> args;
  bool smoke = false;
  for (int i = 0; i < argc; ++i) {
    if (i > 0 && std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      continue;
    }
    args.push_back(argv[i]);
  }
  static char min_time[] = "--benchmark_min_time=0.01";
  if (smoke) args.push_back(min_time);
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  if (smoke && !check_scratch_fold_path()) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
