// Baseline comparison: P-AutoClass vs parallel k-means (the related-work
// algorithm of the paper's ref. [10]) on the same modeled multicomputer.
//
// Two questions: (1) do both SPMD algorithms show the same scaling shape
// (they share the assign-locally / Allreduce skeleton)?  (2) what does the
// Bayesian machinery buy in clustering quality on the paper's overlapping
// mixture, where plain k-means has no way to model differing cluster widths
// or weights?
#include "autoclass/report.hpp"
#include "baseline/kmeans.hpp"
#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace pac;
  const Cli cli(argc, argv);
  const bool smoke = bench::smoke_mode(cli);
  const auto items =
      static_cast<std::size_t>(cli.get_int("items", smoke ? 500 : 10000));
  const auto procs = cli.get_int_list(
      "procs", smoke ? std::vector<std::int64_t>{1, 2, 4}
                     : std::vector<std::int64_t>{1, 2, 4, 8, 10});
  const auto k = static_cast<int>(cli.get_int("clusters", smoke ? 3 : 5));
  const net::Machine machine =
      net::machine_by_name(cli.get_string("machine", "meiko-cs2"));

  const data::LabeledDataset ld = data::paper_dataset(items, 42);
  const ac::Model model = ac::Model::default_model(ld.dataset);

  // Fixed-length runs so times are comparable across P.
  baseline::KMeansConfig km;
  km.k = k;
  km.max_iterations = 25;
  km.rel_tolerance = 0.0;
  ac::SearchConfig search;
  search.start_j_list = {k};
  search.max_tries = 1;
  search.em.max_cycles = 25;
  search.em.min_cycles = 25;

  std::cout << "# P-AutoClass vs parallel k-means — " << items
            << " tuples, k=J=" << k << " on " << machine.name
            << " (25 fixed iterations each)\n";
  Table table("Modeled time and speedup, both algorithms");
  table.set_header({"procs", "autoclass [s]", "kmeans [s]",
                    "autoclass speedup", "kmeans speedup"});

  double t1_ac = 0.0, t1_km = 0.0;
  double ari_ac = 0.0, ari_km = 0.0;
  for (const auto p : procs) {
    mp::World::Config cfg;
    cfg.num_ranks = static_cast<int>(p);
    cfg.machine = machine;
    mp::World world(cfg);
    const core::ParallelOutcome outcome =
        core::run_parallel_search(world, model, search);
    mp::RunStats km_stats;
    const baseline::KMeansResult km_result =
        baseline::parallel_kmeans(world, ld.dataset, km, &km_stats);
    const double t_ac = outcome.stats.virtual_time;
    const double t_km = km_stats.virtual_time;
    if (p == 1) {
      t1_ac = t_ac;
      t1_km = t_km;
      ari_ac = data::adjusted_rand_index(
          ld.labels, ac::assign_labels(outcome.search.top()));
      ari_km = data::adjusted_rand_index(ld.labels, km_result.labels);
    }
    table.add_row({std::to_string(p), format_fixed(t_ac, 2),
                   format_fixed(t_km, 2), format_fixed(t1_ac / t_ac, 2),
                   format_fixed(t1_km / t_km, 2)});
  }
  table.print(std::cout);
  std::cout << "\nclustering quality (ARI vs generating mixture): "
               "P-AutoClass "
            << format_fixed(ari_ac, 3) << ", k-means "
            << format_fixed(ari_km, 3)
            << "\nnotes: both use the same fixed iteration budget and "
               "k-means is *given* the true k; AutoClass's value is that it "
               "searches for the class count, models unequal widths/weights, "
               "and returns soft memberships — at ~3x the per-iteration "
               "cost (likelihoods vs distances).  k-means scales slightly "
               "better because its Allreduce payload is smaller.\n";
  return 0;
}
