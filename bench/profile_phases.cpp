// Figures 1-3 (the profile that motivates the parallelization): the share
// of total runtime spent in base_cycle, and within it the split between
// update_wts, update_parameters, and update_approximations.
//
// Paper numbers to reproduce: base_cycle is ~99.5 % of total time, the two
// update functions dominate it, and update_approximations is negligible.
//
// With PAUTOCLASS_TRACE=1 (or --trace) the breakdown comes from the
// instrumentation layer — the per-rank phase-span histograms recorded by
// the EM engine itself (util/trace.hpp) — and the run additionally emits
// the metrics report plus a chrome://tracing JSON (--trace-json PATH,
// default profile_phases.trace.json).  Without instrumentation it falls
// back to the reducer's cost-charge profile, which covers the same phases.
#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace pac;
  const Cli cli(argc, argv);
  const bool smoke = bench::smoke_mode(cli);
  const auto items =
      static_cast<std::size_t>(cli.get_int("items", smoke ? 400 : 10000));
  const auto j = static_cast<int>(cli.get_int("clusters", smoke ? 4 : 16));
  const auto tries = static_cast<int>(cli.get_int("tries", smoke ? 1 : 3));
  const auto cycles = static_cast<int>(cli.get_int("cycles", smoke ? 3 : 40));
  const net::Machine machine =
      net::machine_by_name(cli.get_string("machine", "meiko-cs2"));

  const data::LabeledDataset ld = data::paper_dataset(items, 42);
  const ac::Model model = ac::Model::default_model(ld.dataset);

  ac::SearchConfig config;
  config.start_j_list = {j};
  config.max_tries = tries;
  config.em.max_cycles = cycles;

  mp::World::Config cfg;
  cfg.num_ranks = 1;  // profile the sequential structure, like the paper
  cfg.machine = machine;
  if (cli.get_bool("trace", false)) cfg.instrument = true;
  mp::World world(cfg);
  const core::ParallelOutcome outcome =
      core::run_parallel_search(world, model, config);

  const double total = outcome.stats.virtual_time;
  std::cout << "# Phase profile — " << items << " tuples, " << j
            << " clusters, " << tries << " tries (sequential structure)\n";

  Table table("Share of total modeled runtime by phase");
  table.set_header({"phase", "seconds", "share"});
  auto row = [&](const char* name, double seconds) {
    table.add_row({name, format_fixed(seconds, 3),
                   format_fixed(100.0 * seconds / total, 2) + "%"});
  };

  if (outcome.stats.instrumented) {
    const core::EmPhaseBreakdown b =
        core::EmPhaseBreakdown::from(outcome.stats.metrics);
    row("update_wts", b.update_wts);
    row("update_parameters", b.update_parameters);
    row("update_approximations", b.update_approximations);
    row("try generation (random_init)", b.random_init);
    row("base_cycle (spans)", b.base_cycle);
    row("phase sum (disjoint spans)", b.phase_sum());
    row("total elapsed", total);
    table.print(std::cout);

    const double base_share = b.update_wts + b.update_parameters +
                              b.update_approximations;
    std::cout << "\npaper: base_cycle ~99.5% of total; "
                 "update_approximations negligible\n";
    std::cout << "measured (instrumented): base_cycle phases "
              << format_fixed(100.0 * base_share / total, 2)
              << "% of total; update_approximations "
              << format_fixed(100.0 * b.update_approximations / total, 3)
              << "%\n";
    std::cout << "phase-span coverage: "
              << format_fixed(100.0 * b.phase_sum() / total, 2)
              << "% of total elapsed (" << b.cycles << " EM cycles, "
              << b.convergence_checks << " convergence checks)\n";
    bench::emit_instrumentation(cli, outcome.stats, "profile_phases");
  } else {
    const core::PhaseProfile& p = outcome.profile;
    const double base_cycle = p.wts + p.params + p.approx;
    row("update_wts", p.wts);
    row("update_parameters", p.params);
    row("update_approximations", p.approx);
    row("base_cycle (sum)", base_cycle);
    row("search overhead", p.overhead);
    row("total", total);
    table.print(std::cout);

    std::cout << "\npaper: base_cycle ~99.5% of total; "
                 "update_approximations negligible\n";
    std::cout << "measured: base_cycle "
              << format_fixed(100.0 * base_cycle / total, 2)
              << "% of total; update_approximations "
              << format_fixed(100.0 * p.approx / total, 3) << "%\n";
    std::cout << "(set PAUTOCLASS_TRACE=1 or pass --trace for the "
                 "instrumented breakdown + chrome trace)\n";
  }
  return 0;
}
