// Figures 1-3 (the profile that motivates the parallelization): the share
// of total runtime spent in base_cycle, and within it the split between
// update_wts, update_parameters, and update_approximations.
//
// Paper numbers to reproduce: base_cycle is ~99.5 % of total time, the two
// update functions dominate it, and update_approximations is negligible.
#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace pac;
  const Cli cli(argc, argv);
  const auto items = static_cast<std::size_t>(cli.get_int("items", 10000));
  const auto j = static_cast<int>(cli.get_int("clusters", 16));
  const auto tries = static_cast<int>(cli.get_int("tries", 3));
  const auto cycles = static_cast<int>(cli.get_int("cycles", 40));
  const net::Machine machine =
      net::machine_by_name(cli.get_string("machine", "meiko-cs2"));

  const data::LabeledDataset ld = data::paper_dataset(items, 42);
  const ac::Model model = ac::Model::default_model(ld.dataset);

  ac::SearchConfig config;
  config.start_j_list = {j};
  config.max_tries = tries;
  config.em.max_cycles = cycles;

  mp::World::Config cfg;
  cfg.num_ranks = 1;  // profile the sequential structure, like the paper
  cfg.machine = machine;
  mp::World world(cfg);
  const core::ParallelOutcome outcome =
      core::run_parallel_search(world, model, config);

  const core::PhaseProfile& p = outcome.profile;
  const double total = outcome.stats.virtual_time;
  const double base_cycle = p.wts + p.params + p.approx;

  std::cout << "# Phase profile — " << items << " tuples, " << j
            << " clusters, " << tries << " tries (sequential structure)\n";
  Table table("Share of total modeled runtime by phase");
  table.set_header({"phase", "seconds", "share"});
  auto row = [&](const char* name, double seconds) {
    table.add_row({name, format_fixed(seconds, 3),
                   format_fixed(100.0 * seconds / total, 2) + "%"});
  };
  row("update_wts", p.wts);
  row("update_parameters", p.params);
  row("update_approximations", p.approx);
  row("base_cycle (sum)", base_cycle);
  row("search overhead", p.overhead);
  row("total", total);
  table.print(std::cout);

  std::cout << "\npaper: base_cycle ~99.5% of total; update_approximations "
               "negligible\n";
  std::cout << "measured: base_cycle "
            << format_fixed(100.0 * base_cycle / total, 2)
            << "% of total; update_approximations "
            << format_fixed(100.0 * p.approx / total, 3) << "%\n";
  return 0;
}
