// Section 5 comparison: P-AutoClass (both EM phases parallel) versus the
// Miller & Guo-style MIMD prototype [paper ref. 7] that parallelizes only
// update_wts.
//
// Expected shape: identical at P=1; the wts-only strategy loses ground as P
// grows because (a) update_parameters stays serial over the whole dataset
// and (b) the full weight matrix must be allgathered every cycle.
#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace pac;
  const Cli cli(argc, argv);
  const bool smoke = bench::smoke_mode(cli);
  const auto items =
      static_cast<std::size_t>(cli.get_int("items", smoke ? 300 : 8000));
  const auto procs = cli.get_int_list(
      "procs", smoke ? std::vector<std::int64_t>{1, 2}
                     : std::vector<std::int64_t>{1, 2, 4, 6, 8, 10});
  std::vector<int> jlist = {2, 4, 8};
  if (cli.has("jlist")) {
    jlist.clear();
    for (const auto j : cli.get_int_list("jlist", {}))
      jlist.push_back(static_cast<int>(j));
  }
  const net::Machine machine =
      net::machine_by_name(cli.get_string("machine", "meiko-cs2"));

  const data::LabeledDataset ld = data::paper_dataset(items, 42);
  const ac::Model model = ac::Model::default_model(ld.dataset);

  ac::SearchConfig config;
  config.start_j_list = jlist;
  config.max_tries = static_cast<int>(cli.get_int("tries", smoke ? 1 : 3));
  config.em.max_cycles =
      static_cast<int>(cli.get_int("cycles", smoke ? 2 : 12));
  config.em.min_cycles = 2;

  std::cout << "# Strategy ablation — " << items << " tuples on "
            << machine.name << " (paper Sec. 5)\n";
  Table table("P-AutoClass (full) vs wts-only parallelization");
  table.set_header({"procs", "full [s]", "wts-only [s]", "full speedup",
                    "wts-only speedup", "advantage"});

  double t1_full = 0.0, t1_wts = 0.0;
  for (const auto p : procs) {
    mp::World::Config cfg;
    cfg.num_ranks = static_cast<int>(p);
    cfg.machine = machine;
    mp::World world(cfg);
    core::ParallelConfig full;
    full.strategy = core::Strategy::kFull;
    core::ParallelConfig wts;
    wts.strategy = core::Strategy::kWtsOnly;
    const double tf =
        core::run_parallel_search(world, model, config, full)
            .stats.virtual_time;
    const double tw =
        core::run_parallel_search(world, model, config, wts)
            .stats.virtual_time;
    if (p == 1) {
      t1_full = tf;
      t1_wts = tw;
    }
    table.add_row({std::to_string(p), format_fixed(tf, 2),
                   format_fixed(tw, 2), format_fixed(t1_full / tf, 2),
                   format_fixed(t1_wts / tw, 2),
                   format_fixed(tw / tf, 2) + "x"});
  }
  table.print(std::cout);
  return 0;
}
