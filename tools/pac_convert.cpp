// pac_convert — produce and inspect .pacb binary columnar files.
//
//   # convert ASCII (.db2 + .hd2) or .csv to binary
//   pac_convert --in d.db2 --header d.hd2 --out d.pacb [--chunk-rows 8192]
//
//   # generate a synthetic dataset straight to disk, streaming slab by
//   # slab so the file can be far larger than RAM
//   pac_convert --synth /tmp/big.pacb --items 50000000 [--seed 42]
//
//   # print the on-disk geometry of an existing file
//   pac_convert --info d.pacb
//
// Conversion loads the input fully resident (conversion is a one-time
// cost); generation streams through format::PacbWriter, whose peak memory
// is one chunk regardless of --items.
#include <fstream>
#include <iostream>

#include "data/format.hpp"
#include "data/io.hpp"
#include "data/synth.hpp"
#include "util/cli.hpp"

namespace {

int usage() {
  std::cerr
      << "usage: pac_convert --in FILE.db2 --header FILE.hd2 --out FILE.pacb\n"
         "       (or --in FILE.csv / FILE.pacb, self-contained)\n"
         "       [--chunk-rows N]      # rows per chunk (default 8192)\n"
         "   or: pac_convert --synth FILE.pacb --items N [--seed S]\n"
         "       [--chunk-rows N]      # streaming generation, >RAM safe\n"
         "   or: pac_convert --info FILE.pacb\n";
  return 2;
}

int info(const std::string& path) {
  using namespace pac::data;
  const format::PacbLayout layout = format::read_layout(path);
  std::cout << path << ": pacb v" << format::kVersion << "\n"
            << "  items      " << layout.num_items << "\n"
            << "  attributes " << layout.schema.size() << " ("
            << layout.schema.num_real() << " real, "
            << layout.schema.num_discrete() << " discrete)\n"
            << "  chunk_rows " << layout.chunk_rows << "\n"
            << "  chunks     " << layout.num_chunks() << "\n"
            << "  row_bytes  " << layout.row_bytes << "\n";
  for (std::size_t a = 0; a < layout.schema.size(); ++a) {
    const Attribute& attr = layout.schema.at(a);
    const ColumnProfile& prof = layout.profiles[a];
    std::cout << "  column " << a << " '" << attr.name << "' "
              << (attr.kind == AttributeKind::kReal ? "real" : "discrete")
              << ": known " << prof.known << ", missing " << prof.missing
              << "\n";
  }
  return 0;
}

int synth(const pac::Cli& cli, const std::string& out_path,
          std::uint32_t chunk_rows) {
  using namespace pac::data;
  const auto items = static_cast<std::uint64_t>(cli.get_int("items", 0));
  if (items == 0) return usage();
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));

  std::ofstream out(out_path, std::ios::binary);
  PAC_REQUIRE_MSG(out.good(), "cannot write '" << out_path << "'");

  // Generate in independent slabs: slab s reseeds the generator with
  // seed + s, so memory stays bounded by one slab and the output depends
  // only on (items, seed), not on the slab size an operator picked.
  constexpr std::uint64_t kSlab = 1 << 16;
  const Schema schema = paper_dataset(1, seed).dataset.schema();
  format::PacbWriter writer(out, schema, items, chunk_rows);
  for (std::uint64_t begin = 0, s = 0; begin < items; begin += kSlab, ++s) {
    const auto n = static_cast<std::size_t>(std::min(kSlab, items - begin));
    writer.append(paper_dataset(n, seed + s).dataset);
  }
  writer.finish();
  PAC_REQUIRE_MSG(out.good(), "short write to '" << out_path << "'");
  out.close();
  std::cout << "generated " << items << " tuples -> " << out_path << " ("
            << format::read_layout(out_path).num_chunks() << " chunks)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pac;
  try {
    const Cli cli(argc, argv);
    const auto chunk_rows = static_cast<std::uint32_t>(
        cli.get_int("chunk-rows", data::format::kDefaultChunkRows));
    PAC_REQUIRE_MSG(chunk_rows > 0, "--chunk-rows must be positive");

    if (cli.has("info")) return info(cli.get_string("info", ""));
    if (cli.has("synth")) return synth(cli, cli.get_string("synth", ""), chunk_rows);

    const std::string in_path = cli.get_string("in", "");
    const std::string out_path = cli.get_string("out", "");
    if (in_path.empty() || out_path.empty()) return usage();

    data::OpenOptions options;
    options.backend = data::Backend::kResident;
    options.header_path = cli.get_string("header", "");
    const data::Dataset dataset = data::open_dataset(in_path, options);
    data::format::write_pacb_file(out_path, dataset, chunk_rows);
    std::cout << "converted " << dataset.num_items() << " tuples x "
              << dataset.num_attributes() << " attributes -> " << out_path
              << "\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "pac_convert: " << e.what() << "\n";
    return 1;
  }
}
