// pac_client — query CLI for a running pac_serve.
//
//   pac_client --connect HOST:PORT --info
//   pac_client --connect HOST:PORT --predict rows.db2 --header d.hd2
//              [--membership] [--labels-out FILE]
//   pac_client --connect HOST:PORT --top-influence 10
//   pac_client --connect HOST:PORT --stats
//   pac_client --connect HOST:PORT --reload
//   pac_client --connect HOST:PORT --bench-predict rows.db2 --header d.hd2
//              --repeat 100       # sustained-load driver for scripts
//
// Rows for --predict come from the same .hd2/.db2 (or .pacb/.csv) formats
// the training tools use; the schema must match the server's.
#include <fstream>
#include <iostream>

#include "data/io.hpp"
#include "serve/client.hpp"
#include "util/cli.hpp"

namespace {

pac::data::Dataset load_rows(const pac::Cli& cli, const std::string& path) {
  using namespace pac;
  data::OpenOptions options;
  options.header_path = cli.get_string("header", "");
  return data::open_dataset(path, options);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pac;
  const Cli cli(argc, argv);

  const std::string address = cli.get_string("connect", "");
  if (address.empty()) {
    std::cerr << "usage: pac_client --connect HOST:PORT\n"
                 "         --info | --stats | --reload\n"
                 "       | --top-influence K\n"
                 "       | --predict ROWS.db2 --header H.hd2 [--membership]\n"
                 "         [--labels-out FILE]\n"
                 "       | --bench-predict ROWS.db2 --header H.hd2\n"
                 "         [--repeat N] [--membership]\n";
    return 2;
  }

  try {
    serve::Client client(address, cli.get_double("timeout", 10.0));

    if (cli.has("info")) {
      const serve::InfoResponse info = client.info();
      std::cout << "generation " << info.generation << "\n"
                << "classes " << info.num_classes << "\n"
                << "log_likelihood " << info.log_likelihood << "\n"
                << "cs_score " << info.cs_score << "\n"
                << "bic_score " << info.bic_score << "\n";
      for (const serve::AttributeInfo& a : info.attributes) {
        std::cout << (a.discrete ? "discrete " : "real ") << a.name;
        if (a.discrete) std::cout << " range " << a.num_values;
        std::cout << "\n";
      }
      return 0;
    }

    if (cli.has("stats")) {
      std::cout << client.stats_text();
      return 0;
    }

    if (cli.has("reload")) {
      const serve::ReloadResponse r = client.reload();
      std::cout << (r.reloaded ? "reloaded" : "not reloaded")
                << ", generation " << r.generation << ": " << r.message
                << "\n";
      return r.reloaded ? 0 : 1;
    }

    if (cli.has("top-influence")) {
      const auto k =
          static_cast<std::uint32_t>(cli.get_int("top-influence", 10));
      const serve::TopInfluenceResponse r = client.top_influence(k);
      std::cout << "generation " << r.generation << "\n";
      for (const serve::InfluenceEntryWire& e : r.entries)
        std::cout << "class " << e.class_index << "  " << e.description
                  << "  influence " << e.influence << "\n";
      return 0;
    }

    if (cli.has("predict") || cli.has("bench-predict")) {
      const bool bench = cli.has("bench-predict");
      const std::string rows_path =
          cli.get_string(bench ? "bench-predict" : "predict", "");
      const data::Dataset rows = load_rows(cli, rows_path);
      const bool membership = cli.get_bool("membership", false);
      const int repeat = bench ? static_cast<int>(cli.get_int("repeat", 100))
                               : 1;
      serve::PredictResponse resp;
      for (int i = 0; i < repeat; ++i)
        resp = client.predict(rows, membership);
      if (bench) {
        std::cout << "ok " << repeat << " requests x " << rows.num_items()
                  << " rows, final generation " << resp.generation << "\n";
        return 0;
      }
      std::cout << "generation " << resp.generation << "\n";
      const std::string labels_path = cli.get_string("labels-out", "");
      std::ofstream labels_file;
      std::ostream* out = &std::cout;
      if (!labels_path.empty()) {
        labels_file.open(labels_path);
        PAC_REQUIRE_MSG(labels_file.good(),
                        "cannot write '" << labels_path << "'");
        out = &labels_file;
      }
      for (std::size_t i = 0; i < resp.labels.size(); ++i) {
        *out << resp.labels[i];
        if (membership)
          for (std::uint32_t j = 0; j < resp.num_classes; ++j)
            *out << " " << resp.membership[i * resp.num_classes + j];
        *out << "\n";
      }
      return 0;
    }

    std::cerr << "pac_client: no command given (--info / --predict / "
                 "--top-influence / --stats / --reload)\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "pac_client: " << e.what() << "\n";
    return 1;
  }
}
