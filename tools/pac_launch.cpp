// pac_launch: run a program as an N-rank pacnet world.
//
//   pac_launch -n 4 ./build/examples/quickstart
//   pac_launch -n 4 --backend hybrid ./build/examples/quickstart
//   pac_launch -n 8 --addr 127.0.0.1:7777 ./build/examples/pautoclass_cli ...
//
// Each rank is a separate OS process started with PACNET_RANK / PACNET_SIZE /
// PACNET_ADDR set; programs opt in with transport::apply_env_backend().  With
// --backend hybrid the launcher additionally creates one shared-memory
// segment per rank pair before forking and passes the inherited fds down via
// PACNET_SHM_FDS, so same-host pairs exchange frames over SPSC rings.  The
// launcher's exit status mirrors the first failing rank (128+signo for signal
// deaths), and stragglers are SIGTERM'd (then SIGKILL'd) after a failure so a
// broken world never hangs the shell.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "mp/status.hpp"
#include "mp/transport/launch.hpp"

namespace {

void usage(std::FILE* out) {
  std::fputs(
      "usage: pac_launch [options] [--] <command> [args...]\n"
      "\n"
      "Run <command> as an N-process pacnet (socket-backend) world.\n"
      "\n"
      "options:\n"
      "  -n, --nprocs N     number of ranks (default 1)\n"
      "  --addr ADDR        rendezvous address: unix:/path or host:port\n"
      "                     (default: a fresh unix socket under /tmp)\n"
      "  --backend NAME     transport: socket (default) or hybrid\n"
      "                     (same-host rank pairs over shared-memory rings)\n"
      "  --shm-ring BYTES   hybrid per-direction ring capacity; accepts k/m\n"
      "                     suffixes, e.g. 256k, 4m (default 1m)\n"
      "  --kill-grace SEC   SIGTERM->SIGKILL grace after a failure "
      "(default 5)\n"
      "  -v, --verbose      print every rank's resolved environment\n"
      "  -q, --quiet        suppress per-rank failure diagnostics\n"
      "  -h, --help         show this help\n",
      out);
}

/// Parse a byte count with an optional k/K or m/M suffix ("256k", "4M").
std::size_t parse_bytes(const char* text) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 10);
  std::size_t scale = 1;
  if (end != text && *end != '\0') {
    if ((*end == 'k' || *end == 'K') && end[1] == '\0')
      scale = 1024;
    else if ((*end == 'm' || *end == 'M') && end[1] == '\0')
      scale = 1024 * 1024;
    else
      end = const_cast<char*>(text);  // flag as malformed
  }
  if (end == text) {
    std::fprintf(stderr, "pac_launch: malformed byte count '%s'\n", text);
    std::exit(2);
  }
  return static_cast<std::size_t>(value) * scale;
}

}  // namespace

int main(int argc, char** argv) {
  pac::mp::transport::LaunchOptions options;
  std::vector<std::string> command;

  int i = 1;
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "pac_launch: %s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "-n" || arg == "--nprocs") {
      options.nprocs = std::atoi(value(arg.c_str()));
    } else if (arg == "--addr") {
      options.address = value("--addr");
    } else if (arg == "--backend") {
      options.backend = value("--backend");
    } else if (arg == "--shm-ring") {
      options.shm_ring_bytes = parse_bytes(value("--shm-ring"));
    } else if (arg == "--kill-grace") {
      options.kill_grace = std::atof(value("--kill-grace"));
    } else if (arg == "-v" || arg == "--verbose") {
      options.verbose = true;
      options.show_env = true;
    } else if (arg == "-q" || arg == "--quiet") {
      options.verbose = false;
    } else if (arg == "-h" || arg == "--help") {
      usage(stdout);
      return 0;
    } else if (arg == "--") {
      ++i;
      break;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "pac_launch: unknown option '%s'\n", arg.c_str());
      usage(stderr);
      return 2;
    } else {
      break;  // first non-option: start of the command
    }
  }
  for (; i < argc; ++i) command.emplace_back(argv[i]);

  if (command.empty()) {
    std::fprintf(stderr, "pac_launch: missing command\n");
    usage(stderr);
    return 2;
  }

  try {
    const pac::mp::transport::LaunchResult result =
        pac::mp::transport::launch(command, options);
    if (result.exit_status != 0 && options.verbose)
      std::fprintf(stderr, "pac_launch: world failed: %s\n",
                   result.diagnosis.c_str());
    return result.exit_status;
  } catch (const pac::mp::TransportError& e) {
    std::fprintf(stderr, "pac_launch: %s\n", e.what());
    return 1;
  }
}
