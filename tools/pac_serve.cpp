// pac_serve — long-lived classification server.
//
// Loads a trained classification checkpoint (either a bare
// pac-classification or a pac-search-result, in which case the best entry
// serves), binds it to the training dataset's model, and answers
// predict / membership / info / top-influence queries from concurrent
// pac_client connections.  With --watch it polls the checkpoint file and
// hot-swaps the model when a retrain lands, without dropping in-flight
// requests.
//
//   pac_serve --header d.hd2 --data d.db2 --checkpoint best.ckpt
//             [--listen 127.0.0.1:0] [--watch] [--max-batch 256]
//             [--max-delay-ms 1.0] [--max-queue-rows 16384]
//             [--watch-interval 0.25] [--address-out FILE]
//
// The concrete bound address (useful with an ephemeral port) is printed on
// stdout and, with --address-out, written to a file for scripts to pick up.
#include <csignal>
#include <fstream>
#include <iostream>
#include <optional>
#include <thread>

#include "autoclass/checkpoint.hpp"
#include "data/io.hpp"
#include "serve/server.hpp"
#include "util/cli.hpp"

namespace {

std::atomic<bool> g_stop{false};

void handle_signal(int) { g_stop.store(true); }

bool has_suffix(const std::string& s, const char* suffix) {
  const std::string suf(suffix);
  return s.size() > suf.size() &&
         s.compare(s.size() - suf.size(), suf.size(), suf) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pac;
  const Cli cli(argc, argv);

  const std::string header_path = cli.get_string("header", "");
  const std::string data_path = cli.get_string("data", "");
  const std::string checkpoint_path = cli.get_string("checkpoint", "");
  if (data_path.empty() || checkpoint_path.empty() ||
      (header_path.empty() && !has_suffix(data_path, ".pacb") &&
       !has_suffix(data_path, ".csv"))) {
    std::cerr
        << "usage: pac_serve --header FILE.hd2 --data FILE.db2\n"
           "                 (or --data FILE.pacb / FILE.csv)\n"
           "                 --checkpoint FILE [--listen HOST:PORT]\n"
           "                 [--watch] [--watch-interval SECONDS]\n"
           "                 [--max-batch ROWS] [--max-delay-ms MS]\n"
           "                 [--max-queue-rows ROWS] [--address-out FILE]\n";
    return 2;
  }

  try {
    const data::Dataset dataset = [&] {
      data::OpenOptions options;
      options.header_path = header_path;
      return data::open_dataset(data_path, options);
    }();
    const ac::Model model = ac::Model::default_model(dataset);

    // Initial load: same magic sniff the watcher uses.
    std::ifstream in(checkpoint_path);
    PAC_REQUIRE_MSG(in.good(),
                    "cannot open checkpoint '" << checkpoint_path << "'");
    std::string first;
    in >> first;
    in.clear();
    in.seekg(0);
    std::optional<ac::Classification> initial;
    if (first == "pac-search-result") {
      ac::SearchResult sr = ac::load_search_result(in, model);
      PAC_REQUIRE_MSG(!sr.best.empty(),
                      "checkpoint '" << checkpoint_path
                                     << "' has an empty leaderboard");
      initial.emplace(std::move(sr.best.front().classification));
    } else {
      initial.emplace(ac::load_classification(in, model));
    }

    serve::ServerOptions opts;
    opts.address = cli.get_string("listen", "127.0.0.1:0");
    opts.max_batch_rows =
        static_cast<std::size_t>(cli.get_int("max-batch", 256));
    opts.max_delay_ms = cli.get_double("max-delay-ms", 1.0);
    opts.max_queue_rows =
        static_cast<std::size_t>(cli.get_int("max-queue-rows", 16384));
    if (cli.get_bool("watch", false)) {
      opts.watch_path = checkpoint_path;
      opts.watch_interval_s = cli.get_double("watch-interval", 0.25);
    }

    serve::Server server(model, std::move(*initial), opts);
    server.start();

    std::cout << "pac_serve: " << dataset.num_items() << " training tuples, "
              << server.generation() << " generation(s), listening on "
              << server.bound_address() << "\n";
    std::cout.flush();
    const std::string address_out = cli.get_string("address-out", "");
    if (!address_out.empty()) {
      std::ofstream out(address_out);
      out << server.bound_address() << "\n";
    }

    struct sigaction sa{};
    sa.sa_handler = handle_signal;
    ::sigaction(SIGINT, &sa, nullptr);
    ::sigaction(SIGTERM, &sa, nullptr);

    while (!g_stop.load())
      std::this_thread::sleep_for(std::chrono::milliseconds(50));

    server.stop();
    metrics::write_report(std::cout, server.metrics(), "pac_serve");
    std::cout << "final generation " << server.generation()
              << ", reload failures " << server.reload_failures()
              << ", busy rejections " << server.busy_rejections() << "\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "pac_serve: " << e.what() << "\n";
    return 1;
  }
}
