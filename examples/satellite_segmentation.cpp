// Satellite image segmentation — the paper's motivating workload: AutoClass
// took >130 hours to classify a Landsat/TM image (Kanefsky et al., paper
// ref. [6]).  We synthesize a multispectral image whose pixels come from a
// handful of land-cover classes (water, forest, crops, urban, bare soil),
// cluster the pixels with P-AutoClass on a modeled multicomputer, and
// render the recovered segmentation as ASCII art next to the ground truth.
//
//   ./satellite_segmentation [--width 96] [--height 40] [--procs 10]
//                            [--machine meiko-cs2]
#include <cmath>
#include <iostream>

#include "autoclass/report.hpp"
#include "core/pautoclass.hpp"
#include "data/synth.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

struct LandCover {
  const char* name;
  char glyph;
  // Mean reflectance in 4 spectral bands (visible x2, NIR, SWIR).
  double bands[4];
  double noise;
};

constexpr LandCover kCovers[] = {
    {"water", '~', {15.0, 12.0, 5.0, 3.0}, 1.5},
    {"forest", '#', {25.0, 30.0, 70.0, 35.0}, 4.0},
    {"crops", '.', {35.0, 45.0, 85.0, 50.0}, 5.0},
    {"urban", '%', {60.0, 58.0, 55.0, 60.0}, 6.0},
    {"soil", ':', {50.0, 42.0, 48.0, 70.0}, 4.0},
};
constexpr int kNumCovers = 5;

/// Smooth "terrain" label field: a few blobby regions per cover type.
int true_cover(std::size_t x, std::size_t y, std::size_t w, std::size_t h) {
  const double fx = static_cast<double>(x) / w;
  const double fy = static_cast<double>(y) / h;
  // A river diagonal, a forest block, urban corner, crops elsewhere.
  if (std::abs(fy - (0.2 + 0.5 * fx)) < 0.06) return 0;           // water
  if (fx < 0.35 && fy < 0.55) return 1;                           // forest
  if (fx > 0.7 && fy > 0.6) return 3;                             // urban
  if (fy > 0.75 || (fx > 0.55 && fy < 0.3)) return 4;             // soil
  return 2;                                                       // crops
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pac;
  const Cli cli(argc, argv);
  const auto width = static_cast<std::size_t>(cli.get_int("width", 96));
  const auto height = static_cast<std::size_t>(cli.get_int("height", 40));
  const int procs = static_cast<int>(cli.get_int("procs", 10));
  const net::Machine machine =
      net::machine_by_name(cli.get_string("machine", "meiko-cs2"));
  const std::size_t pixels = width * height;

  // 1. Synthesize the multispectral image.
  std::vector<data::Attribute> attrs;
  for (int b = 0; b < 4; ++b)
    attrs.push_back(data::Attribute::real("band" + std::to_string(b), 0.5));
  data::Dataset image(data::Schema(attrs), pixels);
  std::vector<std::int32_t> truth(pixels);
  Xoshiro256ss rng(1234);
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      const int c = true_cover(x, y, width, height);
      const std::size_t i = y * width + x;
      truth[i] = c;
      for (int b = 0; b < 4; ++b)
        image.set_real(i, b,
                       kCovers[c].bands[b] + kCovers[c].noise * normal01(rng));
    }
  }

  // 2. Cluster the pixels with P-AutoClass (search over class counts).
  const ac::Model model = ac::Model::default_model(image);
  ac::SearchConfig search;
  search.start_j_list = {3, 5, 8};
  search.max_tries = 3;
  search.em.max_cycles = 60;
  mp::World::Config cfg;
  cfg.num_ranks = procs;
  cfg.machine = machine;
  mp::World world(cfg);
  const core::ParallelOutcome outcome =
      core::run_parallel_search(world, model, search);
  const ac::Classification& best = outcome.search.top();
  const auto labels = ac::assign_labels(best);

  // 3. Render ground truth vs segmentation.
  const char* kLabelGlyphs = "~#.%:ox+*@";
  std::cout << "Ground truth (" << width << "x" << height
            << " pixels)                  |  P-AutoClass segmentation ("
            << best.num_classes() << " classes found)\n";
  for (std::size_t y = 0; y < height; y += 2) {  // halve rows for terminals
    std::string left, right;
    for (std::size_t x = 0; x < width; x += 2) {
      const std::size_t i = y * width + x;
      left.push_back(kCovers[truth[i]].glyph);
      right.push_back(kLabelGlyphs[labels[i] % 10]);
    }
    std::cout << left << "  |  " << right << "\n";
  }

  // 4. Quality and cost summary.
  std::cout << "\nadjusted Rand index vs ground truth: "
            << data::adjusted_rand_index(truth, labels) << "\n";
  std::cout << "mean max membership (class separation): "
            << ac::mean_max_membership(best) << "\n";
  std::cout << "modeled elapsed time on " << procs << "x " << machine.name
            << ": " << format_hms(outcome.stats.virtual_time) << " ("
            << format_fixed(outcome.stats.virtual_time, 2) << " s)\n";

  // 5. Spectral signatures of the recovered classes.
  std::cout << "\nRecovered spectral signatures:\n";
  for (std::size_t j = 0; j < best.num_classes(); ++j) {
    std::cout << "  class " << j << " [" << kLabelGlyphs[j % 10] << "]";
    for (std::size_t t = 0; t < model.num_terms(); ++t)
      std::cout << "  " << format_fixed(best.param_block(j, t)[0], 1);
    std::cout << "\n";
  }
  return 0;
}
