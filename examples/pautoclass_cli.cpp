// pautoclass_cli — the AutoClass-style command-line front end: read a
// header (.hd2-style) and data (.db2-style) file, search for the best
// classification, and write reports.  With --generate it first emits a
// demo dataset so the tool is runnable out of the box.
//
//   # self-contained demo: generate files, cluster them, print the report
//   ./pautoclass_cli --generate /tmp/demo --items 2000
//
//   # cluster your own files
//   ./pautoclass_cli --header my.hd2 --data my.db2 --procs 8
//                    --jlist 2,4,8 --tries 5 --labels-out labels.txt
#include <fstream>
#include <iostream>

#include "autoclass/checkpoint.hpp"
#include "autoclass/report.hpp"
#include "core/pautoclass.hpp"
#include "data/io.hpp"
#include "data/synth.hpp"
#include "mp/transport/env.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace pac;
  const Cli cli(argc, argv);

  // Under pac_launch this process is one rank of a multi-process world:
  // gate stdout and file side effects to rank 0 so the run behaves like a
  // single program.
  const bool launched = mp::transport::pacnet_launched();
  const bool primary = mp::transport::is_primary();
  std::ofstream devnull;
  if (!primary) {
    devnull.open("/dev/null");
    std::cout.rdbuf(devnull.rdbuf());
  }

  std::string header_path = cli.get_string("header", "");
  std::string data_path = cli.get_string("data", "");

  if (cli.has("generate") && launched) {
    // Every rank reads the dataset, so generating inside a distributed run
    // would race all ranks writing the same files.  Generate first, then
    // launch: pac_launch -n 4 pautoclass_cli --data PREFIX.db2 ...
    std::cerr << "pautoclass_cli: --generate cannot run under pac_launch; "
                 "generate the dataset in a plain run first\n";
    return 2;
  }
  if (cli.has("generate")) {
    // Emit a demo dataset next to the given prefix (--binary: one .pacb
    // file instead of the .hd2/.db2 ASCII pair).
    const std::string prefix = cli.get_string("generate", "/tmp/pac_demo");
    const auto items = static_cast<std::size_t>(cli.get_int("items", 2000));
    const data::LabeledDataset demo = data::paper_dataset(items, 42);
    if (cli.get_bool("binary", false)) {
      data_path = prefix + ".pacb";
      data::write_binary_file(data_path, demo.dataset);
      std::cout << "generated " << items << " tuples -> " << data_path
                << "\n";
    } else {
      header_path = prefix + ".hd2";
      data_path = prefix + ".db2";
      data::write_header_file(header_path, demo.dataset.schema());
      data::write_data_file(data_path, demo.dataset);
      std::cout << "generated " << items << " tuples -> " << header_path
                << ", " << data_path << "\n";
    }
  }

  const auto has_suffix = [&](const char* suffix) {
    const std::string s(suffix);
    return data_path.size() > s.size() &&
           data_path.compare(data_path.size() - s.size(), s.size(), s) == 0;
  };
  const bool have_binary = has_suffix(".pacb");
  const bool have_csv = has_suffix(".csv");
  if (data_path.empty() ||
      (header_path.empty() && !have_binary && !have_csv)) {
    std::cerr << "usage: pautoclass_cli --header FILE.hd2 --data FILE.db2\n"
                 "       (or --data FILE.pacb / FILE.csv, self-contained)\n"
                 "       [--procs N] [--machine meiko-cs2] [--jlist 2,4,8]\n"
                 "       [--tries 5] [--max-cycles 100] [--seed 1234]\n"
                 "       [--data-budget-mb N]  # stream a .pacb out of core\n"
                 "       [--try-groups G]      # try-parallel: G sub-worlds\n"
                 "       [--labels-out FILE] [--report-out FILE]\n"
                 "       [--checkpoint FILE]   # save/resume search state\n"
                 "   or: pautoclass_cli --generate PREFIX [--items N]\n";
    return 2;
  }

  // 1. Load through the unified entry point: open_dataset sniffs .pacb /
  //    .csv / ASCII and switches to the chunk-backed out-of-core backend
  //    when a budget is configured (--data-budget-mb or PAC_DATA_BUDGET_MB).
  const data::Dataset dataset = [&] {
    data::OpenOptions options;
    options.header_path = header_path;
    options.budget_mb =
        static_cast<std::size_t>(cli.get_int("data-budget-mb", 0));
    return data::open_dataset(data_path, options);
  }();
  if (!dataset.resident())
    std::cout << "out-of-core: streaming " << data_path
              << " under the chunk-cache budget\n";
  const data::Schema& schema = dataset.schema();
  std::cout << "loaded " << dataset.num_items() << " tuples x "
            << dataset.num_attributes() << " attributes ("
            << schema.num_real() << " real, " << schema.num_discrete()
            << " discrete)\n";
  PAC_REQUIRE_MSG(dataset.num_items() > 0, "dataset is empty");

  // 2. Configure the search.
  const ac::Model model = ac::Model::default_model(dataset);
  ac::SearchConfig search;
  search.start_j_list.clear();
  for (const auto j : cli.get_int_list("jlist", {2, 4, 8}))
    search.start_j_list.push_back(static_cast<int>(j));
  search.max_tries = static_cast<int>(cli.get_int("tries", 5));
  search.em.max_cycles = static_cast<int>(cli.get_int("max-cycles", 100));
  search.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1234));

  // 3. Run (parallel if requested), resuming from a checkpoint if present.
  // pac_launch's environment switches the world to the socket backend and
  // overrides --procs with the real world size.
  int procs = static_cast<int>(cli.get_int("procs", 1));
  mp::World::Config cfg;
  cfg.num_ranks = procs;
  cfg.machine = net::machine_by_name(
      cli.get_string("machine", "meiko-cs2"));
  if (mp::transport::apply_env_backend(cfg)) procs = cfg.num_ranks;
  mp::World world(cfg);

  const std::string checkpoint_path = cli.get_string("checkpoint", "");
  ac::SearchResult resume_state;
  const ac::SearchResult* resume = nullptr;
  if (!checkpoint_path.empty()) {
    std::ifstream probe(checkpoint_path);
    if (probe.good()) {
      resume_state = ac::load_search_result(probe, model);
      resume = &resume_state;
      std::cout << "resuming from " << checkpoint_path << " ("
                << resume_state.tries << " tries already done)\n";
    }
  }
  core::ParallelConfig parallel;
  parallel.try_groups = static_cast<int>(cli.get_int("try-groups", 0));
  if (parallel.try_groups > 0)
    std::cout << "try-parallel search: " << parallel.try_groups
              << " sub-world(s) of " << procs / parallel.try_groups
              << " rank(s)\n";
  const core::ParallelOutcome outcome =
      core::run_parallel_search(world, model, search, parallel, resume);
  const ac::SearchResult& result = outcome.search;
  if (!checkpoint_path.empty() && primary) {
    ac::save_search_result_file(checkpoint_path, result);
    std::cout << "search state -> " << checkpoint_path << "\n";
  }

  // 4. Report.
  std::cout << "\nsearch: " << result.tries << " tries, "
            << result.duplicates << " duplicates eliminated, "
            << result.total_cycles << " EM cycles total\n";
  std::cout << (launched ? "measured time on " : "modeled time on ") << procs
            << (launched ? " processes" : "x ")
            << (launched ? std::string() : cfg.machine.name)
            << ": " << format_hms(outcome.stats.virtual_time)
            << "  (host wall: " << format_fixed(outcome.stats.wall_seconds, 2)
            << " s)\n\n";
  Table leaderboard("Best classifications");
  leaderboard.set_header({"rank", "classes", "CS score", "log L", "cycles"});
  for (std::size_t b = 0; b < result.best.size(); ++b) {
    const ac::Classification& c = result.best[b].classification;
    leaderboard.add_row({std::to_string(b + 1),
                         std::to_string(c.num_classes()),
                         format_fixed(c.cs_score, 1),
                         format_fixed(c.log_likelihood, 1),
                         std::to_string(c.cycles)});
  }
  leaderboard.print(std::cout);
  std::cout << "\n";

  const std::string report_path = cli.get_string("report-out", "");
  if (!report_path.empty() && primary) {
    std::ofstream out(report_path);
    PAC_REQUIRE_MSG(out.good(), "cannot write '" << report_path << "'");
    ac::print_report(out, result.top());
    std::cout << "full report -> " << report_path << "\n";
  } else if (report_path.empty()) {
    ac::print_report(std::cout, result.top());
  }

  // 5. Hard assignments.
  const std::string labels_path = cli.get_string("labels-out", "");
  if (!labels_path.empty() && primary) {
    const auto labels = ac::assign_labels(result.top());
    std::ofstream out(labels_path);
    PAC_REQUIRE_MSG(out.good(), "cannot write '" << labels_path << "'");
    for (const auto l : labels) out << l << "\n";
    std::cout << "labels -> " << labels_path << "\n";
  }
  return 0;
}
