// Census-style mixed-data clustering: the kind of KDD workload the paper's
// introduction motivates (large relational tables with heterogeneous
// attributes).  This example exercises every model-term family at once:
//
//   age                 real          single_normal
//   income              positive real single_lognormal (heavy right tail)
//   household_size      discrete      single_multinomial
//   region              discrete      ignore        (an ID-like column we
//                                                    exclude from the model)
//   spend_rate/save_rate correlated   multi_normal  (2-attribute block)
//
// plus missing values, a checkpoint save, and prediction on fresh records.
//
//   ./census_mixed [--records 4000] [--procs 8]
#include <cmath>
#include <fstream>
#include <iostream>

#include "autoclass/checkpoint.hpp"
#include "autoclass/report.hpp"
#include "core/pautoclass.hpp"
#include "data/synth.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

struct Segment {
  const char* name;
  double age_mean, age_sd;
  double log_income_mean, log_income_sd;
  std::vector<double> household;  // P(size = 1..5)
  double spend_mean, save_mean, spend_save_corr;
};

const Segment kSegments[] = {
    {"students", 23.0, 3.0, std::log(14000.0), 0.35,
     {0.55, 0.30, 0.10, 0.04, 0.01}, 0.85, 0.05, -0.6},
    {"families", 41.0, 7.0, std::log(52000.0), 0.30,
     {0.05, 0.15, 0.30, 0.35, 0.15}, 0.65, 0.20, -0.4},
    {"retirees", 70.0, 6.0, std::log(28000.0), 0.40,
     {0.35, 0.55, 0.07, 0.02, 0.01}, 0.45, 0.35, 0.2},
};

}  // namespace

int main(int argc, char** argv) {
  using namespace pac;
  const Cli cli(argc, argv);
  const auto records = static_cast<std::size_t>(cli.get_int("records", 4000));
  const int procs = static_cast<int>(cli.get_int("procs", 8));

  // 1. Build the table.
  std::vector<data::Attribute> attrs = {
      data::Attribute::real("age", 0.5),
      data::Attribute::real("income", 0.02),  // relative error (log-normal)
      data::Attribute::discrete("household_size", 5),
      data::Attribute::discrete("region", 16),  // ID-like noise, ignored
      data::Attribute::real("spend_rate", 0.01),
      data::Attribute::real("save_rate", 0.01),
  };
  data::Dataset table(data::Schema(attrs), records);
  std::vector<std::int32_t> truth(records);
  Xoshiro256ss rng(2026);
  for (std::size_t i = 0; i < records; ++i) {
    const auto s = static_cast<int>(uniform_index(rng, 3));
    truth[i] = s;
    const Segment& seg = kSegments[s];
    table.set_real(i, 0, seg.age_mean + seg.age_sd * normal01(rng));
    table.set_real(
        i, 1, std::exp(seg.log_income_mean + seg.log_income_sd * normal01(rng)));
    table.set_discrete(
        i, 2, static_cast<std::int32_t>(categorical(rng, seg.household)));
    table.set_discrete(i, 3, static_cast<std::int32_t>(uniform_index(rng, 16)));
    // Correlated spend/save block.
    const double z1 = normal01(rng), z2 = normal01(rng);
    const double r = seg.spend_save_corr;
    const double spend = seg.spend_mean + 0.08 * z1;
    const double save =
        seg.save_mean + 0.06 * (r * z1 + std::sqrt(1 - r * r) * z2);
    table.set_real(i, 4, spend);
    table.set_real(i, 5, save);
  }
  // Census answers are incomplete: age/income/household sometimes missing
  // (the multi_normal block must stay complete).
  Xoshiro256ss gaps(9);
  for (std::size_t i = 0; i < records; ++i)
    for (std::size_t a = 0; a < 3; ++a)
      if (uniform01(gaps) < 0.04) table.set_missing(i, a);

  // 2. Model structure: one spec per family.
  std::vector<ac::TermSpec> specs(5);
  specs[0] = {ac::TermKind::kSingleNormal, {0}};
  specs[1] = {ac::TermKind::kSingleLognormal, {1}};
  specs[2] = {ac::TermKind::kSingleMultinomial, {2}};
  specs[3] = {ac::TermKind::kIgnore, {3}};
  specs[4] = {ac::TermKind::kMultiNormal, {4, 5}};
  const ac::Model model(table, std::move(specs));

  // 3. Search on the modeled multicomputer.
  ac::SearchConfig search;
  search.start_j_list = {2, 3, 5};
  search.max_tries = 3;
  search.em.max_cycles = 60;
  mp::World::Config cfg;
  cfg.num_ranks = procs;
  cfg.machine = net::meiko_cs2();
  mp::World world(cfg);
  const core::ParallelOutcome outcome =
      core::run_parallel_search(world, model, search);
  const ac::Classification& best = outcome.search.top();

  const auto labels = ac::assign_labels(best);
  std::cout << "discovered " << best.num_classes() << " segments among "
            << records << " records (truth: 3)\n";
  std::cout << "adjusted Rand index: "
            << data::adjusted_rand_index(truth, labels)
            << ", purity: " << data::cluster_purity(truth, labels) << "\n";
  std::cout << "modeled elapsed time on " << procs
            << "x meiko-cs2: " << format_hms(outcome.stats.virtual_time)
            << "\n\n";

  // 4. Confusion table against the generating segments.
  const data::ConfusionMatrix confusion =
      data::confusion_matrix(truth, labels);
  Table table_out("Recovered segment vs generating segment");
  std::vector<std::string> header = {"truth \\ found"};
  for (std::size_t p = 0; p < confusion.cols; ++p)
    header.push_back("class " + std::to_string(p));
  table_out.set_header(header);
  for (std::size_t t = 0; t < confusion.rows; ++t) {
    std::vector<std::string> row = {kSegments[t].name};
    for (std::size_t p = 0; p < confusion.cols; ++p)
      row.push_back(std::to_string(confusion.at(t, p)));
    table_out.add_row(std::move(row));
  }
  table_out.print(std::cout);

  // 5. Per-class profile (means in natural units).
  std::cout << "\nSegment profiles:\n";
  for (std::size_t j = 0; j < best.num_classes(); ++j) {
    const auto age = best.param_block(j, 0);
    const auto income = best.param_block(j, 1);
    const auto block = best.param_block(j, 4);
    std::cout << "  class " << j << ": age " << format_fixed(age[0], 1)
              << ", median income "
              << format_fixed(std::exp(income[0]), 0) << ", spend rate "
              << format_fixed(block[0], 2) << ", save rate "
              << format_fixed(block[1], 2) << "\n";
  }

  // 6. Persist the classification and classify a fresh batch.
  const std::string checkpoint = "/tmp/census_segments.search";
  ac::save_search_result_file(checkpoint, outcome.search);
  std::cout << "\nsearch state -> " << checkpoint << "\n";
  // Fresh records drawn from the same population: predict without refit.
  data::Dataset fresh(table.schema(), 5);
  Xoshiro256ss rng2(99);
  for (std::size_t i = 0; i < 5; ++i) {
    const Segment& seg = kSegments[i % 3];
    fresh.set_real(i, 0, seg.age_mean);
    fresh.set_real(i, 1, std::exp(seg.log_income_mean));
    fresh.set_discrete(i, 2, 1);
    fresh.set_discrete(i, 3, 7);
    fresh.set_real(i, 4, seg.spend_mean);
    fresh.set_real(i, 5, seg.save_mean);
  }
  const auto predicted = ac::predict_labels(best, fresh);
  std::cout << "predictions for 5 prototype records:";
  for (const auto p : predicted) std::cout << " " << p;
  std::cout << "\n";
  return 0;
}
