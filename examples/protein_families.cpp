// Protein-family discovery — the paper's second motivating workload:
// Bayesian classification of protein data took 300-400 hours (Hunter &
// States, paper ref. [3]).  We synthesize sequence-derived feature vectors
// (discrete residue classes at conserved positions + real physicochemical
// summaries) for a few "families", let AutoClass find the families without
// supervision, and use the influence report to show *which* positions
// discriminate — the reading a biologist would do.
//
//   ./protein_families [--proteins 3000] [--procs 8] [--families 4]
#include <iostream>

#include "autoclass/report.hpp"
#include "core/pautoclass.hpp"
#include "data/synth.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

// Residue classes: a coarse 6-letter alphabet (hydrophobic, polar, acidic,
// basic, aromatic, special) — standard for sequence clustering.
constexpr int kAlphabet = 6;
constexpr int kPositions = 8;  // conserved alignment columns

struct Family {
  const char* name;
  // Preferred residue class per position (one is strongly conserved).
  int consensus[kPositions];
  double conservation;  // probability of the consensus class
  double mass_mean;     // molecular weight summary (kDa)
  double pi_mean;       // isoelectric point
};

constexpr Family kFamilies[] = {
    {"kinase-like", {0, 1, 2, 0, 4, 1, 0, 3}, 0.85, 45.0, 6.2},
    {"protease-like", {4, 0, 0, 3, 1, 5, 2, 0}, 0.80, 28.0, 5.1},
    {"globin-like", {1, 3, 0, 0, 0, 2, 4, 1}, 0.90, 16.5, 7.8},
    {"transporter-like", {2, 2, 5, 1, 3, 0, 1, 4}, 0.75, 62.0, 8.4},
};

}  // namespace

int main(int argc, char** argv) {
  using namespace pac;
  const Cli cli(argc, argv);
  const auto proteins = static_cast<std::size_t>(cli.get_int("proteins", 3000));
  const int procs = static_cast<int>(cli.get_int("procs", 8));
  const int families =
      static_cast<int>(cli.get_int("families", 4));
  PAC_REQUIRE(families >= 1 && families <= 4);

  // 1. Synthesize the protein feature table.
  std::vector<data::Attribute> attrs;
  for (int p = 0; p < kPositions; ++p)
    attrs.push_back(
        data::Attribute::discrete("pos" + std::to_string(p), kAlphabet));
  attrs.push_back(data::Attribute::real("mass_kda", 0.5));
  attrs.push_back(data::Attribute::real("isoelectric_pt", 0.1));
  data::Dataset table(data::Schema(attrs), proteins);
  std::vector<std::int32_t> truth(proteins);
  Xoshiro256ss rng(77);
  for (std::size_t i = 0; i < proteins; ++i) {
    const auto f =
        static_cast<int>(uniform_index(rng, static_cast<std::uint64_t>(families)));
    truth[i] = f;
    const Family& fam = kFamilies[f];
    for (int p = 0; p < kPositions; ++p) {
      std::int32_t residue;
      if (uniform01(rng) < fam.conservation) {
        residue = fam.consensus[p];
      } else {
        residue = static_cast<std::int32_t>(uniform_index(rng, kAlphabet));
      }
      table.set_discrete(i, p, residue);
    }
    table.set_real(i, kPositions, fam.mass_mean + 3.0 * normal01(rng));
    table.set_real(i, kPositions + 1, fam.pi_mean + 0.4 * normal01(rng));
  }
  // Real data is gappy: drop 5% of entries.
  data::inject_missing(table, 0.05, 78);

  // 2. Unsupervised family discovery with P-AutoClass.
  const ac::Model model = ac::Model::default_model(table);
  ac::SearchConfig search;
  search.start_j_list = {2, 4, 8};
  search.max_tries = 4;
  search.em.max_cycles = 60;
  mp::World::Config cfg;
  cfg.num_ranks = procs;
  cfg.machine = net::meiko_cs2();
  mp::World world(cfg);
  const core::ParallelOutcome outcome =
      core::run_parallel_search(world, model, search);
  const ac::Classification& best = outcome.search.top();

  // 3. Report: recovered families and their sizes.
  const auto labels = ac::assign_labels(best);
  std::cout << "Discovered " << best.num_classes() << " families among "
            << proteins << " proteins (truth: " << families << ")\n";
  std::cout << "adjusted Rand index vs true families: "
            << data::adjusted_rand_index(truth, labels) << "\n";
  std::cout << "modeled elapsed time on " << procs
            << "x meiko-cs2: " << format_hms(outcome.stats.virtual_time)
            << "\n\n";

  // 4. Which features define the families?  Top influence values.
  Table influence("Most discriminating features (top 10 by influence)");
  influence.set_header({"class", "feature", "influence (KL vs global)"});
  const auto report = ac::influence_report(best);
  for (std::size_t e = 0; e < report.size() && e < 10; ++e) {
    const auto& entry = report[e];
    influence.add_row(
        {std::to_string(entry.class_index),
         table.schema().at(model.term(entry.term_index).spec().attributes[0])
             .name,
         format_fixed(entry.influence, 3)});
  }
  influence.print(std::cout);

  // 5. Family profiles: consensus residue class per position.
  std::cout << "\nRecovered family profiles (argmax residue class per "
               "position, '.' = weakly conserved):\n";
  for (std::size_t j = 0; j < best.num_classes(); ++j) {
    std::cout << "  family " << j << ": ";
    for (int p = 0; p < kPositions; ++p) {
      const auto params = best.param_block(j, static_cast<std::size_t>(p));
      int argmax = 0;
      for (int l = 1; l < kAlphabet; ++l)
        if (params[l] > params[argmax]) argmax = l;
      const double prob = std::exp(params[argmax]);
      std::cout << (prob > 0.5 ? static_cast<char>('A' + argmax) : '.');
    }
    std::cout << "  (share "
              << format_fixed(best.weight(j) /
                                  static_cast<double>(proteins),
                              2)
              << ")\n";
  }
  return 0;
}
