// Quickstart: cluster a small synthetic dataset with sequential AutoClass,
// then run P-AutoClass on a modeled 8-processor Meiko CS-2 and compare.
//
//   ./quickstart [--items 4000] [--procs 8] [--tries 4]
//
// Walks through the whole public API: generate data, build a model, search
// for the best classification, read the report, and run the same search
// under the parallel engine.
#include <iostream>

#include "autoclass/report.hpp"
#include "autoclass/search.hpp"
#include "core/pautoclass.hpp"
#include "data/synth.hpp"
#include "mp/transport/env.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const pac::Cli cli(argc, argv);
  const auto items = static_cast<std::size_t>(cli.get_int("items", 4000));
  int procs = static_cast<int>(cli.get_int("procs", 8));
  const int tries = static_cast<int>(cli.get_int("tries", 4));
  // Under pac_launch this process is one rank of a real multi-process
  // world; output is gated to rank 0 so the run prints once.
  const bool primary = pac::mp::transport::is_primary();

  // 1. Data: the paper's synthetic two-attribute Gaussian benchmark.
  const pac::data::LabeledDataset labeled =
      pac::data::paper_dataset(items, /*seed=*/42);

  // 2. Model: default AutoClass structure (one single_normal per real
  //    attribute).
  const pac::ac::Model model =
      pac::ac::Model::default_model(labeled.dataset);

  // 3. Sequential search.
  pac::ac::SearchConfig search;
  search.start_j_list = {2, 4, 8};
  search.max_tries = tries;
  search.em.max_cycles = 60;
  const pac::ac::SearchResult sequential =
      pac::ac::sequential_search(model, search);

  if (primary) {
    std::cout << "--- sequential AutoClass ---\n";
    pac::ac::print_report(std::cout, sequential.top());
    const auto labels = pac::ac::assign_labels(sequential.top());
    std::cout << "adjusted Rand index vs ground truth: "
              << pac::data::adjusted_rand_index(labeled.labels, labels)
              << "\n\n";
  }

  // 4. The same search under P-AutoClass — on a modeled Meiko CS-2 by
  //    default, or as one rank of a real multi-process socket world when
  //    started by pac_launch (the environment overrides procs).
  pac::mp::World::Config world_config;
  world_config.num_ranks = procs;
  world_config.machine = pac::net::meiko_cs2();
  const bool launched = pac::mp::transport::apply_env_backend(world_config);
  if (launched) procs = world_config.num_ranks;
  pac::mp::World world(world_config);
  const pac::core::ParallelOutcome parallel =
      pac::core::run_parallel_search(world, model, search);

  if (primary) {
    std::cout << "--- P-AutoClass on " << procs
              << (launched ? " real processes ---\n"
                           : " modeled processors ---\n");
    std::cout << "best score (sequential) = "
              << sequential.top().cs_score << "\n";
    std::cout << "best score (parallel)   = "
              << parallel.search.top().cs_score << "\n";
    std::cout << (launched ? "measured elapsed time   = "
                           : "modeled elapsed time    = ")
              << pac::format_hms(parallel.stats.virtual_time) << " ("
              << parallel.stats.virtual_time << " s)\n";
    std::cout << "  compute " << parallel.stats.max_compute()
              << " s, network " << parallel.stats.max_comm() << " s\n";
    std::cout << "host wall time          = " << parallel.stats.wall_seconds
              << " s\n";
  }
  return 0;
}
